// Package sim executes isa programs functionally, the way the paper uses
// SimpleScalar's sim-safe: no timing, just architectural state, with precise
// detection of the two catastrophic-failure classes the paper measures —
// crashes (traps) and infinite runs (instruction-budget exhaustion).
//
// Memory follows SimpleScalar's lazy-allocation semantics: the entire
// 32-bit space is accessible. Loads from never-written pages return zero
// and stores allocate pages on demand, so a corrupted *data* pointer
// produces garbage data rather than a segmentation fault. Crashes therefore
// come from the same sources they do under sim-safe: jumps outside the text
// segment, misaligned word/halfword accesses, integer division by zero,
// unknown syscalls, and resource exhaustion (a run that scribbles over an
// unreasonable number of pages or emits unbounded output is the moral
// equivalent of the host simulator being OOM-killed). This distinction is
// load-bearing for reproducing the paper: with control data protected, wild
// addresses corrupt fidelity but rarely crash, which is exactly the
// behaviour Table 2 reports.
//
// The simulator also implements the paper's fault model: a FaultPlan marks
// which static instructions are eligible for injection and schedules single
// bit flips at given ordinals of the dynamic eligible-instruction stream.
// A flip XORs one bit into the destination register immediately after
// writeback, so the error propagates architecturally exactly as in §4
// ("once an error was introduced ... it would propagate to all dependent
// instructions").
package sim

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"slices"
	"time"

	"etap/internal/isa"
)

// Outcome classifies how a run ended.
type Outcome uint8

const (
	// OK means the program exited via the exit syscall.
	OK Outcome = iota
	// Crash means a trap fired: the paper's "crashing" catastrophic failure.
	Crash
	// Timeout means the instruction budget was exhausted: the paper's
	// "infinite execution time" catastrophic failure.
	Timeout
	// Detected means the program executed a trapdet instruction: a
	// redundancy check inserted by the internal/harden rewriter observed a
	// mismatch and stopped the run. It is neither a completion nor a
	// catastrophic failure; campaigns count it as detection coverage.
	Detected
	// Recovered means the run trapped (Detected) at least once, was rolled
	// back to a checkpoint strictly before the detection point, replayed,
	// and finally completed with output bit-identical to the golden run.
	// Only Runner.RunRecover produces it; plain runs never do.
	Recovered
)

func (o Outcome) String() string {
	switch o {
	case OK:
		return "ok"
	case Crash:
		return "crash"
	case Timeout:
		return "timeout"
	case Detected:
		return "detected"
	case Recovered:
		return "recovered"
	}
	return fmt.Sprintf("outcome(%d)", uint8(o))
}

// TrapKind identifies the crash cause.
type TrapKind uint8

const (
	TrapNone         TrapKind = iota
	TrapMemAlign              // misaligned word/half access
	TrapMemExhausted          // too many demand-allocated pages
	TrapDivZero               // integer division by zero
	TrapBadPC                 // jump or fall-through outside the text segment
	TrapBadSyscall            // unknown syscall number
	TrapOutputLimit           // unreasonable output volume
)

func (k TrapKind) String() string {
	switch k {
	case TrapNone:
		return "none"
	case TrapMemAlign:
		return "misaligned access"
	case TrapMemExhausted:
		return "memory exhausted"
	case TrapDivZero:
		return "division by zero"
	case TrapBadPC:
		return "bad program counter"
	case TrapBadSyscall:
		return "bad syscall"
	case TrapOutputLimit:
		return "output limit exceeded"
	}
	return fmt.Sprintf("trap(%d)", uint8(k))
}

// Trap records crash details.
type Trap struct {
	Kind TrapKind
	PC   int    // text index of the faulting instruction
	Addr uint32 // offending address for memory/pc traps
}

func (t Trap) String() string {
	return fmt.Sprintf("%s at pc=%d addr=0x%x", t.Kind, t.PC, t.Addr)
}

// Syscall numbers (in $v0 at the syscall instruction).
const (
	SysExit  = 1 // a0 = exit status
	SysWrite = 4 // a0 = buffer address, a1 = length; appends to output
	SysRead  = 5 // a0 = buffer address, a1 = max length; v0 = bytes read
)

// Injection schedules one bit flip: after the At-th dynamic execution of an
// eligible instruction (1-based), XOR 1<<Bit into its destination register.
type Injection struct {
	At  uint64
	Bit uint8
}

// FaultPlan describes where errors may strike. Eligible is indexed by text
// position; Injections must be sorted by ascending At. A plan with only
// Eligible set (no injections) is useful for counting the dynamic eligible
// stream length of a clean run.
//
// The Eligible mask must not be mutated once a plan carrying it has been
// run: the predecoded engine folds the mask into its compiled instruction
// stream and caches that stream by the mask's identity.
type FaultPlan struct {
	Eligible   []bool
	Injections []Injection
}

// Config parameterises one run.
type Config struct {
	// MemSize is the size of the directly backed (fast) memory region,
	// which holds the data segment and the stack. Defaults to 8 MiB.
	// Addresses beyond it fall into demand-allocated sparse pages.
	MemSize uint32
	// MaxInstr is the instruction budget; exceeding it yields Timeout.
	// Defaults to 1<<32.
	MaxInstr uint64
	// MaxOutput caps the output buffer. Defaults to 8 MiB.
	MaxOutput int
	// MaxPages caps demand-allocated sparse pages (4 KiB each) outside the
	// fast region. Defaults to 2048 (8 MiB).
	MaxPages int
	// Input is the byte stream served by the read syscall.
	Input []byte
	// Plan optionally enables fault accounting and injection.
	Plan *FaultPlan
	// Trace, when non-nil, receives a disassembly line per executed
	// instruction. Debugging only; it is very slow.
	Trace io.Writer
	// SiteVisit, when non-nil, receives the text index of every retired
	// eligible instruction in dynamic (eligible-stream) order: the n-th
	// call corresponds to eligible-stream ordinal n. Like Trace it is an
	// instrumented path and forces the reference interpreter; the
	// campaign engine sets it on the golden pass only, to map stream
	// ordinals back to static fault sites.
	SiteVisit func(pc int)
}

// Result is the outcome of a run.
type Result struct {
	Outcome  Outcome
	Trap     Trap
	ExitCode int32
	// Instret is the number of instructions executed.
	Instret uint64
	// EligibleExec is the number of executed instructions whose text slot
	// was marked eligible in the plan.
	EligibleExec uint64
	// Injected is how many scheduled flips actually fired (a run can crash
	// before reaching later injection points).
	Injected int
	// FirstInjectInstret is the value of Instret at the moment the first
	// scheduled flip fired (the flipped instruction had just retired), and
	// 0 when no flip fired.
	FirstInjectInstret uint64
	// DetectInstret is the value of Instret when a trapdet check ended a
	// Detected run, and 0 otherwise. DetectInstret-FirstInjectInstret is
	// the detection latency in retired instructions.
	DetectInstret uint64
	// DetectPC is the text index of the trapdet instruction that ended a
	// Detected run, and -1 otherwise.
	DetectPC int
	// Output is everything the program wrote.
	Output []byte
	// ClassCounts counts executed instructions per isa.Class.
	ClassCounts [6]uint64
	// RecoveryAttempts is how many checkpoint restore-replay rounds the
	// trial consumed (Runner.RunRecover); 0 when recovery is disabled or
	// the run never trapped.
	RecoveryAttempts int
	// RecoverInstret is the total instructions retired across all recovery
	// replays — the rollback cost of the trial in re-executed work. The
	// headline Instret field ends at the final replay's retirement count
	// and does not include instructions that earlier, abandoned attempts
	// executed.
	RecoverInstret uint64
}

// DetectLatency is the distance, in retired instructions, between the
// first fired injection and the redundancy check that caught it. It is
// meaningful only for Detected runs with at least one fired flip; ok
// reports whether both ends of the window exist.
func (r Result) DetectLatency() (lat uint64, ok bool) {
	if r.Outcome != Detected || r.Injected == 0 || r.DetectInstret < r.FirstInjectInstret {
		return 0, false
	}
	return r.DetectInstret - r.FirstInjectInstret, true
}

const pageShift = 12
const pageSize = 1 << pageShift

// normalize fills Config defaults. Run, ReferenceRun, Record and Runner
// trials all go through it, so the defaulting cannot drift between entry
// points.
func (c Config) normalize() Config {
	if c.MemSize == 0 {
		c.MemSize = 8 << 20
	}
	if c.MaxInstr == 0 {
		c.MaxInstr = 1 << 32
	}
	if c.MaxOutput == 0 {
		c.MaxOutput = 8 << 20
	}
	if c.MaxPages == 0 {
		c.MaxPages = 2048
	}
	return c
}

// Run executes the program to completion under cfg.
//
// Execution happens on the predecoded engine (predecode.go, engine.go):
// the text segment is compiled once per (program, eligibility mask) pair
// into a dense superinstruction stream and the hot loop dispatches over
// that. Tracing runs fall back to the reference interpreter. The two paths
// produce bit-identical Results — TestEngineMatchesReference and
// FuzzEngineEquivalence enforce it.
func Run(p *isa.Program, cfg Config) Result {
	cfg = cfg.normalize()
	if cfg.Trace != nil || cfg.SiteVisit != nil {
		return referenceRun(p, cfg)
	}
	code := codeFor(p, cfg.Plan)
	m, buf := newScratch(p, cfg)
	start := time.Now()
	m.runEngine(code)
	recordRunMetrics(simRunsScratch, m.instret, time.Since(start))
	res := m.result()
	buf.release()
	return res
}

// ReferenceRun executes the program on the reference decode-dispatch
// interpreter: the per-step switch over isa opcodes that predates the
// predecoded engine. It stays in-tree as the semantic baseline — the
// differential harness asserts bit-identical Results between both engines
// for every app, hardened variant and injection plan — and it carries the
// instrumented paths (tracing, checkpoint recording) the fast loop does
// not implement.
func ReferenceRun(p *isa.Program, cfg Config) Result {
	return referenceRun(p, cfg.normalize())
}

// referenceRun expects a normalized cfg.
func referenceRun(p *isa.Program, cfg Config) Result {
	m, buf := newScratch(p, cfg)
	start := time.Now()
	m.run()
	recordRunMetrics(simRunsScratch, m.instret, time.Since(start))
	res := m.result()
	buf.release()
	return res
}

// newScratch assembles a from-scratch machine over pooled flat memory.
// cfg must be normalized. The caller releases buf once the machine's
// Result has been taken.
func newScratch(p *isa.Program, cfg Config) (*machine, *scratchBuf) {
	buf := acquireScratch(cfg.MemSize)
	m := &machine{
		text:    p.Text,
		mem:     buf.mem,
		dirty:   buf.dirty,
		memSize: cfg.MemSize,
		input:   cfg.Input,
		cfg:     cfg,
	}
	n := copy(m.mem[isa.DataBase:], p.Data)
	buf.markRange(isa.DataBase, uint32(n))
	m.regs[isa.RegSP] = cfg.MemSize - 16
	m.pc = p.Entry

	if cfg.Plan != nil {
		m.eligible = cfg.Plan.Eligible
		m.injections = cfg.Plan.Injections
	}
	return m, buf
}

// result snapshots the machine's architecturally visible end state; Run,
// Record and Recording.RunFrom all report through it.
func (m *machine) result() Result {
	return Result{
		Outcome:            m.outcome,
		Trap:               m.trap,
		ExitCode:           m.exitCode,
		Instret:            m.instret,
		EligibleExec:       m.eligCount,
		Injected:           m.injected,
		FirstInjectInstret: m.firstInjInstret,
		DetectInstret:      m.detectInstret(),
		DetectPC:           m.detectPC(),
		Output:             m.out,
		ClassCounts:        m.classCounts,
	}
}

// detectPC is the trapdet location for Detected runs and -1 otherwise.
func (m *machine) detectPC() int {
	if m.outcome == Detected {
		return m.pc
	}
	return -1
}

// detectInstret is the retirement count at trapdet for Detected runs and 0
// otherwise.
func (m *machine) detectInstret() uint64 {
	if m.outcome == Detected {
		return m.instret
	}
	return 0
}

type machine struct {
	text []isa.Instr
	// regs is the register file, oversized on purpose. Index isa.NumRegs is
	// a write sink: the predecoded engine redirects $zero destinations
	// there, so its writeback is a straight store with no "is this $zero"
	// branch. The array is 256 long so any uint8 register index from a
	// dinstr is provably in range and the compiler drops every bounds
	// check in the hot loop. Only regs[:isa.NumRegs] is architectural; the
	// sink and the slack are never read.
	regs    [256]uint32
	mem     []byte
	memSize uint32
	pages   map[uint32]*[pageSize]byte
	pc      int

	// dirty, when non-nil, is a per-page bitmap over mem maintained by the
	// flat store path so the pool can reset only written pages (pool.go).
	dirty []uint64

	// Paged mode replaces the flat mem array with a page table over the
	// fast region, so a machine can be restored from a Snapshot without
	// copying memory: restored pages are shared read-only and copied on
	// first write. pageTab and wrTab are indexed by page number — wrTab
	// holds only this machine's private (writable) copies, so a store fast
	// path is a single lookup; a page present in pageTab but not wrTab is
	// shared read-only. roSparse holds snapshot pages beyond the fast
	// region that have not been written yet (they migrate into pages on
	// first store).
	paged    bool
	pageTab  []*[pageSize]byte
	wrTab    []*[pageSize]byte
	roSparse map[uint32]*[pageSize]byte

	// rec, when non-nil, records snapshots of machine state every
	// rec.interval instructions (see snapshot.go).
	rec *recorder

	input []byte
	inPos int
	out   []byte
	cfg   Config

	eligible        []bool
	injections      []Injection
	injected        int
	firstInjInstret uint64
	eligCount       uint64

	instret     uint64
	classCounts [6]uint64

	outcome  Outcome
	trap     Trap
	exitCode int32
	done     bool
}

func (m *machine) fault(kind TrapKind, addr uint32) {
	m.outcome = Crash
	m.trap = Trap{Kind: kind, PC: m.pc, Addr: addr}
	m.done = true
}

// load reads size bytes at addr. Aligned accesses never straddle a page.
func (m *machine) load(addr, size uint32) (uint32, bool) {
	if addr%size != 0 {
		m.fault(TrapMemAlign, addr)
		return 0, false
	}
	var buf []byte
	if m.paged {
		pn := addr >> pageShift
		if addr < m.memSize {
			pg := m.pageTab[pn]
			if pg == nil {
				return 0, true
			}
			buf = pg[addr&(pageSize-1):]
		} else {
			pg, ok := m.pages[pn]
			if !ok {
				if pg, ok = m.roSparse[pn]; !ok {
					return 0, true
				}
			}
			buf = pg[addr&(pageSize-1):]
		}
	} else if addr+size <= m.memSize && addr+size > addr {
		buf = m.mem[addr:]
	} else {
		pg, ok := m.pages[addr>>pageShift]
		if !ok {
			return 0, true // lazily-allocated memory reads as zero
		}
		buf = pg[addr&(pageSize-1):]
	}
	switch size {
	case 1:
		return uint32(buf[0]), true
	case 2:
		return uint32(binary.LittleEndian.Uint16(buf)), true
	default:
		return binary.LittleEndian.Uint32(buf), true
	}
}

func (m *machine) store(addr, size, val uint32) bool {
	if addr%size != 0 {
		m.fault(TrapMemAlign, addr)
		return false
	}
	var buf []byte
	if m.paged {
		buf = m.storeSlot(addr)
		if buf == nil {
			return false
		}
	} else if addr+size <= m.memSize && addr+size > addr {
		buf = m.mem[addr:]
		pn := addr >> pageShift
		if m.dirty != nil {
			m.dirty[pn>>6] |= 1 << (pn & 63)
		}
		if m.rec != nil {
			m.rec.dirtyFast(pn)
		}
	} else {
		pn := addr >> pageShift
		pg, ok := m.pages[pn]
		if !ok {
			if len(m.pages) >= m.cfg.MaxPages {
				m.fault(TrapMemExhausted, addr)
				return false
			}
			if m.pages == nil {
				m.pages = make(map[uint32]*[pageSize]byte)
			}
			pg = new([pageSize]byte)
			m.pages[pn] = pg
		}
		if m.rec != nil {
			m.rec.dirtySparse(pn)
		}
		buf = pg[addr&(pageSize-1):]
	}
	switch size {
	case 1:
		buf[0] = byte(val)
	case 2:
		binary.LittleEndian.PutUint16(buf, uint16(val))
	default:
		binary.LittleEndian.PutUint32(buf, val)
	}
	return true
}

// storeSlot resolves the writable byte slice backing addr in paged mode,
// copying shared snapshot pages on first write. It returns nil after
// raising a fault.
func (m *machine) storeSlot(addr uint32) []byte {
	pn := addr >> pageShift
	if addr < m.memSize {
		pg := m.wrTab[pn]
		if pg == nil {
			pg = new([pageSize]byte)
			if ro := m.pageTab[pn]; ro != nil {
				*pg = *ro
			}
			m.pageTab[pn] = pg
			m.wrTab[pn] = pg
		}
		return pg[addr&(pageSize-1):]
	}
	pg, ok := m.pages[pn]
	if !ok {
		if ro, rok := m.roSparse[pn]; rok {
			// Copy-on-write migration keeps the demand-page count equal
			// to what a from-scratch run would have accumulated.
			pg = new([pageSize]byte)
			*pg = *ro
			delete(m.roSparse, pn)
		} else {
			if len(m.pages)+len(m.roSparse) >= m.cfg.MaxPages {
				m.fault(TrapMemExhausted, addr)
				return nil
			}
			pg = new([pageSize]byte)
		}
		if m.pages == nil {
			m.pages = make(map[uint32]*[pageSize]byte)
		}
		m.pages[pn] = pg
	}
	return pg[addr&(pageSize-1):]
}

// peek reads one byte honouring the sparse model (absent pages read as
// zero) in both flat and paged modes.
func (m *machine) peek(a uint32) byte {
	pn := a >> pageShift
	if m.paged {
		if a < m.memSize {
			if pg := m.pageTab[pn]; pg != nil {
				return pg[a&(pageSize-1)]
			}
			return 0
		}
		if pg, ok := m.pages[pn]; ok {
			return pg[a&(pageSize-1)]
		}
		if pg, ok := m.roSparse[pn]; ok {
			return pg[a&(pageSize-1)]
		}
		return 0
	}
	if a < m.memSize {
		return m.mem[a]
	}
	if pg, ok := m.pages[pn]; ok {
		return pg[a&(pageSize-1)]
	}
	return 0
}

// readBytes copies n bytes starting at addr for the write syscall,
// honouring the sparse model (absent pages read as zero).
func (m *machine) readBytes(dst []byte, addr uint32) {
	for i := range dst {
		dst[i] = m.peek(addr + uint32(i))
	}
}

func (m *machine) writeBytes(src []byte, addr uint32) bool {
	for i := range src {
		if !m.store(addr+uint32(i), 1, uint32(src[i])) {
			return false
		}
	}
	return true
}

func (m *machine) setReg(r isa.Reg, v uint32) {
	if r != isa.RegZero {
		m.regs[r] = v
	}
}

func f32(b uint32) float32  { return math.Float32frombits(b) }
func bits(f float32) uint32 { return math.Float32bits(f) }

func sdiv(a, b int32) int32 {
	if a == math.MinInt32 && b == -1 {
		return math.MinInt32 // MIPS leaves this unpredictable; pin it
	}
	return a / b
}

func srem(a, b int32) int32 {
	if a == math.MinInt32 && b == -1 {
		return 0
	}
	return a % b
}

// codeIdx converts an architectural code address to a text index.
func codeIdx(addr uint32) int { return int(int64(addr) - int64(isa.TextBase)) }

func (m *machine) run() {
	for !m.done {
		if m.pc < 0 || m.pc >= len(m.text) {
			m.fault(TrapBadPC, uint32(m.pc))
			return
		}
		if m.instret >= m.cfg.MaxInstr {
			m.outcome = Timeout
			return
		}
		if m.rec != nil && m.instret == m.rec.next {
			m.rec.capture(m)
		}
		in := m.text[m.pc]
		m.instret++
		m.classCounts[in.Class()]++
		if m.cfg.Trace != nil {
			fmt.Fprintf(m.cfg.Trace, "%8d pc=%-6d %s\n", m.instret, m.pc, isa.Disasm(in))
		}
		next := m.pc + 1
		r := &m.regs

		switch in.Op {
		case isa.NOP:
		case isa.ADD:
			m.setReg(in.Rd, uint32(int32(r[in.Rs])+int32(r[in.Rt])))
		case isa.SUB:
			m.setReg(in.Rd, uint32(int32(r[in.Rs])-int32(r[in.Rt])))
		case isa.MUL:
			m.setReg(in.Rd, uint32(int32(r[in.Rs])*int32(r[in.Rt])))
		case isa.DIV:
			if r[in.Rt] == 0 {
				m.fault(TrapDivZero, 0)
				return
			}
			m.setReg(in.Rd, uint32(sdiv(int32(r[in.Rs]), int32(r[in.Rt]))))
		case isa.REM:
			if r[in.Rt] == 0 {
				m.fault(TrapDivZero, 0)
				return
			}
			m.setReg(in.Rd, uint32(srem(int32(r[in.Rs]), int32(r[in.Rt]))))
		case isa.AND:
			m.setReg(in.Rd, r[in.Rs]&r[in.Rt])
		case isa.OR:
			m.setReg(in.Rd, r[in.Rs]|r[in.Rt])
		case isa.XOR:
			m.setReg(in.Rd, r[in.Rs]^r[in.Rt])
		case isa.NOR:
			m.setReg(in.Rd, ^(r[in.Rs] | r[in.Rt]))
		case isa.SLLV:
			m.setReg(in.Rd, r[in.Rs]<<(r[in.Rt]&31))
		case isa.SRLV:
			m.setReg(in.Rd, r[in.Rs]>>(r[in.Rt]&31))
		case isa.SRAV:
			m.setReg(in.Rd, uint32(int32(r[in.Rs])>>(r[in.Rt]&31)))
		case isa.SLT:
			m.setReg(in.Rd, b2u(int32(r[in.Rs]) < int32(r[in.Rt])))
		case isa.SLTU:
			m.setReg(in.Rd, b2u(r[in.Rs] < r[in.Rt]))

		case isa.ADDI:
			m.setReg(in.Rd, uint32(int32(r[in.Rs])+in.Imm))
		case isa.ANDI:
			m.setReg(in.Rd, r[in.Rs]&uint32(in.Imm))
		case isa.ORI:
			m.setReg(in.Rd, r[in.Rs]|uint32(in.Imm))
		case isa.XORI:
			m.setReg(in.Rd, r[in.Rs]^uint32(in.Imm))
		case isa.SLL:
			m.setReg(in.Rd, r[in.Rs]<<(uint32(in.Imm)&31))
		case isa.SRL:
			m.setReg(in.Rd, r[in.Rs]>>(uint32(in.Imm)&31))
		case isa.SRA:
			m.setReg(in.Rd, uint32(int32(r[in.Rs])>>(uint32(in.Imm)&31)))
		case isa.SLTI:
			m.setReg(in.Rd, b2u(int32(r[in.Rs]) < in.Imm))
		case isa.LUI:
			m.setReg(in.Rd, uint32(in.Imm)<<16)

		case isa.ADDF:
			m.setReg(in.Rd, bits(f32(r[in.Rs])+f32(r[in.Rt])))
		case isa.SUBF:
			m.setReg(in.Rd, bits(f32(r[in.Rs])-f32(r[in.Rt])))
		case isa.MULF:
			m.setReg(in.Rd, bits(f32(r[in.Rs])*f32(r[in.Rt])))
		case isa.DIVF:
			m.setReg(in.Rd, bits(f32(r[in.Rs])/f32(r[in.Rt])))
		case isa.CVTIF:
			m.setReg(in.Rd, bits(float32(int32(r[in.Rs]))))
		case isa.CVTFI:
			m.setReg(in.Rd, uint32(f2i(f32(r[in.Rs]))))
		case isa.CEQF:
			m.setReg(in.Rd, b2u(f32(r[in.Rs]) == f32(r[in.Rt])))
		case isa.CLTF:
			m.setReg(in.Rd, b2u(f32(r[in.Rs]) < f32(r[in.Rt])))
		case isa.CLEF:
			m.setReg(in.Rd, b2u(f32(r[in.Rs]) <= f32(r[in.Rt])))

		case isa.LW:
			v, ok := m.load(uint32(int32(r[in.Rs])+in.Imm), 4)
			if !ok {
				return
			}
			m.setReg(in.Rd, v)
		case isa.LH:
			v, ok := m.load(uint32(int32(r[in.Rs])+in.Imm), 2)
			if !ok {
				return
			}
			m.setReg(in.Rd, uint32(int32(int16(v))))
		case isa.LHU:
			v, ok := m.load(uint32(int32(r[in.Rs])+in.Imm), 2)
			if !ok {
				return
			}
			m.setReg(in.Rd, v)
		case isa.LB:
			v, ok := m.load(uint32(int32(r[in.Rs])+in.Imm), 1)
			if !ok {
				return
			}
			m.setReg(in.Rd, uint32(int32(int8(v))))
		case isa.LBU:
			v, ok := m.load(uint32(int32(r[in.Rs])+in.Imm), 1)
			if !ok {
				return
			}
			m.setReg(in.Rd, v)
		case isa.SW:
			if !m.store(uint32(int32(r[in.Rs])+in.Imm), 4, r[in.Rt]) {
				return
			}
		case isa.SH:
			if !m.store(uint32(int32(r[in.Rs])+in.Imm), 2, r[in.Rt]) {
				return
			}
		case isa.SB:
			if !m.store(uint32(int32(r[in.Rs])+in.Imm), 1, r[in.Rt]) {
				return
			}

		case isa.BEQ:
			if r[in.Rs] == r[in.Rt] {
				next = int(in.Imm)
			}
		case isa.BNE:
			if r[in.Rs] != r[in.Rt] {
				next = int(in.Imm)
			}
		case isa.BLEZ:
			if int32(r[in.Rs]) <= 0 {
				next = int(in.Imm)
			}
		case isa.BGTZ:
			if int32(r[in.Rs]) > 0 {
				next = int(in.Imm)
			}
		case isa.BLTZ:
			if int32(r[in.Rs]) < 0 {
				next = int(in.Imm)
			}
		case isa.BGEZ:
			if int32(r[in.Rs]) >= 0 {
				next = int(in.Imm)
			}
		case isa.J:
			next = int(in.Imm)
		case isa.JAL:
			m.setReg(isa.RegRA, isa.TextBase+uint32(m.pc+1))
			next = int(in.Imm)
		case isa.JR:
			next = codeIdx(r[in.Rs])
		case isa.JALR:
			m.setReg(in.Rd, isa.TextBase+uint32(m.pc+1))
			next = codeIdx(r[in.Rs])

		case isa.SYSCALL:
			if !m.syscall() {
				return
			}

		case isa.TRAPDET:
			m.outcome = Detected
			m.done = true
			return
		}

		// Fault accounting and injection happen after writeback so the
		// flipped bit lands in the committed result.
		if m.eligible != nil && m.pc < len(m.eligible) && m.eligible[m.pc] {
			m.eligCount++
			if m.cfg.SiteVisit != nil {
				m.cfg.SiteVisit(m.pc)
			}
			if m.injected < len(m.injections) && m.eligCount == m.injections[m.injected].At {
				bit := m.injections[m.injected].Bit & 31
				if d, ok := in.Dest(); ok && d != isa.RegZero {
					m.regs[d] ^= 1 << bit
				}
				if m.injected == 0 {
					m.firstInjInstret = m.instret
				}
				m.injected++
			}
		}

		m.pc = next
	}
}

// maxSyscallLen bounds a single read/write syscall; a corrupted length
// register asking for more is treated as the host refusing the allocation.
const maxSyscallLen = 4 << 20

func (m *machine) syscall() bool {
	r := &m.regs
	switch r[isa.RegV0] {
	case SysExit:
		m.outcome = OK
		m.exitCode = int32(r[isa.RegA0])
		m.done = true
		return false
	case SysWrite:
		addr, n := r[isa.RegA0], r[isa.RegA1]
		if n > maxSyscallLen || len(m.out)+int(n) > m.cfg.MaxOutput {
			m.fault(TrapOutputLimit, addr)
			return false
		}
		// Reserve in place and copy straight into the output buffer: no
		// per-syscall scratch allocation. slices.Grow always reallocates
		// when capacity is short, so a restored machine sharing a golden
		// prefix (len==cap) never scribbles over the recording's bytes.
		old := len(m.out)
		m.out = slices.Grow(m.out, int(n))[:old+int(n)]
		m.readBytes(m.out[old:], addr)
		m.setReg(isa.RegV0, n)
	case SysRead:
		addr, n := r[isa.RegA0], r[isa.RegA1]
		if n > maxSyscallLen {
			m.fault(TrapOutputLimit, addr)
			return false
		}
		avail := uint32(len(m.input) - m.inPos)
		if n > avail {
			n = avail
		}
		if !m.writeBytes(m.input[m.inPos:m.inPos+int(n)], addr) {
			return false
		}
		m.inPos += int(n)
		m.setReg(isa.RegV0, n)
	default:
		m.fault(TrapBadSyscall, r[isa.RegV0])
		return false
	}
	return true
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// f2i truncates a float32 toward zero with saturation, pinning NaN to 0,
// so corrupted float data cannot crash the host simulator.
func f2i(f float32) int32 {
	if f != f {
		return 0
	}
	if f >= math.MaxInt32 {
		return math.MaxInt32
	}
	if f <= math.MinInt32 {
		return math.MinInt32
	}
	return int32(f)
}

// faultAt is fault with an explicit faulting pc, for the engine loop which
// keeps the program counter in a local.
func (m *machine) faultAt(kind TrapKind, pc int, addr uint32) {
	m.pc = pc
	m.fault(kind, addr)
}
