package sim

import (
	"math"
	"testing"

	"etap/internal/asm"
	"etap/internal/isa"
)

// runAsm assembles and runs a program that must exit cleanly.
func runAsm(t *testing.T, src string, cfg Config) Result {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return Run(p, cfg)
}

// exitWith wraps a snippet so that the value in $v1 becomes the exit code.
func exitWith(body string) string {
	return ".text\n.func __start\n" + body + "\n\tmove $a0, $v1\n\tli $v0, 1\n\tsyscall\n.endfunc\n"
}

func expectExit(t *testing.T, body string, want uint32) {
	t.Helper()
	res := runAsm(t, exitWith(body), Config{})
	if res.Outcome != OK {
		t.Fatalf("outcome = %s (trap %s), want ok", res.Outcome, res.Trap)
	}
	if uint32(res.ExitCode) != want {
		t.Fatalf("exit = %d (0x%x), want %d (0x%x)", uint32(res.ExitCode), uint32(res.ExitCode), want, want)
	}
}

func TestIntegerALUSemantics(t *testing.T) {
	cases := []struct {
		name string
		body string
		want uint32
	}{
		{"add", "li $t0, 7\n li $t1, 35\n add $v1, $t0, $t1", 42},
		{"add wraps", "li $t0, 0x7FFFFFFF\n li $t1, 1\n add $v1, $t0, $t1", 0x80000000},
		{"sub", "li $t0, 10\n li $t1, 14\n sub $v1, $t0, $t1", 0xFFFFFFFC},
		{"mul", "li $t0, -6\n li $t1, 7\n mul $v1, $t0, $t1", uint32(0xFFFFFFFF - 41)},
		{"div", "li $t0, -45\n li $t1, 7\n div $v1, $t0, $t1", uint32(0xFFFFFFFA)}, // -6
		{"div minint", "li $t0, 0x80000000\n li $t1, -1\n div $v1, $t0, $t1", 0x80000000},
		{"rem", "li $t0, -45\n li $t1, 7\n rem $v1, $t0, $t1", uint32(0xFFFFFFFD)}, // -3
		{"rem minint", "li $t0, 0x80000000\n li $t1, -1\n rem $v1, $t0, $t1", 0},
		{"and", "li $t0, 0xF0F0\n li $t1, 0x0FF0\n and $v1, $t0, $t1", 0x00F0},
		{"or", "li $t0, 0xF000\n li $t1, 0x000F\n or $v1, $t0, $t1", 0xF00F},
		{"xor", "li $t0, 0xFF00\n li $t1, 0x0FF0\n xor $v1, $t0, $t1", 0xF0F0},
		{"nor", "li $t0, 0xFFFF0000\n li $t1, 0x0000FF00\n nor $v1, $t0, $t1", 0x000000FF},
		{"sllv", "li $t0, 1\n li $t1, 33\n sllv $v1, $t0, $t1", 2}, // shift mod 32
		{"srlv", "li $t0, 0x80000000\n li $t1, 4\n srlv $v1, $t0, $t1", 0x08000000},
		{"srav", "li $t0, 0x80000000\n li $t1, 4\n srav $v1, $t0, $t1", 0xF8000000},
		{"slt true", "li $t0, -1\n li $t1, 1\n slt $v1, $t0, $t1", 1},
		{"slt false", "li $t0, 1\n li $t1, -1\n slt $v1, $t0, $t1", 0},
		{"sltu", "li $t0, -1\n li $t1, 1\n sltu $v1, $t0, $t1", 0}, // 0xFFFFFFFF > 1 unsigned
		{"addi", "li $t0, 40\n addi $v1, $t0, 2", 42},
		{"addi negative", "li $t0, 40\n addi $v1, $t0, -50", uint32(0xFFFFFFF6)},
		{"andi", "li $t0, 0x1234\n andi $v1, $t0, 0xFF", 0x34},
		{"ori", "li $t0, 0x1200\n ori $v1, $t0, 0x34", 0x1234},
		{"xori", "li $t0, 0xFF\n xori $v1, $t0, 0x0F", 0xF0},
		{"sll", "li $t0, 3\n sll $v1, $t0, 4", 48},
		{"srl", "li $t0, 0xFFFFFFFF\n srl $v1, $t0, 28", 0xF},
		{"sra", "li $t0, 0x80000000\n sra $v1, $t0, 31", 0xFFFFFFFF},
		{"slti", "li $t0, -5\n slti $v1, $t0, 0", 1},
		{"lui", "lui $v1, 0x1234", 0x12340000},
		{"zero register ignores writes", "li $t0, 9\n add $zero, $t0, $t0\n move $v1, $zero", 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { expectExit(t, c.body, c.want) })
	}
}

func TestFloatSemantics(t *testing.T) {
	f := func(v float32) uint32 { return math.Float32bits(v) }
	cases := []struct {
		name string
		body string
		want uint32
	}{
		{"addf", "li $t0, " + itoa(f(1.5)) + "\n li $t1, " + itoa(f(2.25)) + "\n addf $v1, $t0, $t1", f(3.75)},
		{"subf", "li $t0, " + itoa(f(1.0)) + "\n li $t1, " + itoa(f(2.5)) + "\n subf $v1, $t0, $t1", f(-1.5)},
		{"mulf", "li $t0, " + itoa(f(-2)) + "\n li $t1, " + itoa(f(8)) + "\n mulf $v1, $t0, $t1", f(-16)},
		{"divf", "li $t0, " + itoa(f(7)) + "\n li $t1, " + itoa(f(2)) + "\n divf $v1, $t0, $t1", f(3.5)},
		{"divf by zero gives inf", "li $t0, " + itoa(f(1)) + "\n li $t1, 0\n divf $v1, $t0, $t1", f(float32(math.Inf(1)))},
		{"cvtif", "li $t0, -3\n cvtif $v1, $t0", f(-3)},
		{"cvtfi truncates", "li $t0, " + itoa(f(-2.9)) + "\n cvtfi $v1, $t0", uint32(0xFFFFFFFE)},
		{"cvtfi nan is zero", "li $t0, 0x7FC00000\n cvtfi $v1, $t0", 0},
		{"cvtfi saturates", "li $t0, " + itoa(f(3e9)) + "\n cvtfi $v1, $t0", 0x7FFFFFFF},
		{"ceqf", "li $t0, " + itoa(f(2)) + "\n move $t1, $t0\n ceqf $v1, $t0, $t1", 1},
		{"cltf", "li $t0, " + itoa(f(-1)) + "\n li $t1, " + itoa(f(1)) + "\n cltf $v1, $t0, $t1", 1},
		{"clef", "li $t0, " + itoa(f(1)) + "\n move $t1, $t0\n clef $v1, $t0, $t1", 1},
		{"nan compares false", "li $t0, 0x7FC00000\n move $t1, $t0\n ceqf $v1, $t0, $t1", 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { expectExit(t, c.body, c.want) })
	}
}

func itoa(v uint32) string { return "0x" + hex(v) }

func hex(v uint32) string {
	const digits = "0123456789abcdef"
	out := make([]byte, 8)
	for i := 7; i >= 0; i-- {
		out[i] = digits[v&0xF]
		v >>= 4
	}
	return string(out)
}

func TestMemorySemantics(t *testing.T) {
	cases := []struct {
		name string
		body string
		want uint32
	}{
		{"word round trip", "li $t0, 0x12345678\n li $t1, 0x2000\n sw $t0, 0($t1)\n lw $v1, 0($t1)", 0x12345678},
		{"byte little endian", "li $t0, 0x12345678\n li $t1, 0x2000\n sw $t0, 0($t1)\n lbu $v1, 0($t1)", 0x78},
		{"byte top", "li $t0, 0x12345678\n li $t1, 0x2000\n sw $t0, 0($t1)\n lbu $v1, 3($t1)", 0x12},
		{"lb sign extends", "li $t0, 0x80\n li $t1, 0x2000\n sb $t0, 0($t1)\n lb $v1, 0($t1)", 0xFFFFFF80},
		{"lh sign extends", "li $t0, 0x8000\n li $t1, 0x2000\n sh $t0, 0($t1)\n lh $v1, 0($t1)", 0xFFFF8000},
		{"lhu zero extends", "li $t0, 0x8000\n li $t1, 0x2000\n sh $t0, 0($t1)\n lhu $v1, 0($t1)", 0x8000},
		{"negative offset", "li $t0, 77\n li $t1, 0x2010\n sw $t0, -8($t1)\n li $t2, 0x2008\n lw $v1, 0($t2)", 77},
		{"sparse read is zero", "lui $t1, 0x4000\n lw $v1, 0($t1)", 0},
		{"sparse write round trip", "li $t0, 99\n lui $t1, 0x4000\n sw $t0, 64($t1)\n lw $v1, 64($t1)", 99},
		{"null page readable (SimpleScalar lazy memory)", "li $t1, 4\n lw $v1, 0($t1)", 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { expectExit(t, c.body, c.want) })
	}
}

func TestTraps(t *testing.T) {
	cases := []struct {
		name string
		body string
		kind TrapKind
	}{
		{"div by zero", "li $t0, 5\n li $t1, 0\n div $v1, $t0, $t1", TrapDivZero},
		{"rem by zero", "li $t0, 5\n li $t1, 0\n rem $v1, $t0, $t1", TrapDivZero},
		{"misaligned word load", "li $t1, 0x2001\n lw $v1, 0($t1)", TrapMemAlign},
		{"misaligned word store", "li $t0, 1\n li $t1, 0x2002\n sw $t0, 0($t1)", TrapMemAlign},
		{"misaligned half", "li $t1, 0x2001\n lhu $v1, 0($t1)", TrapMemAlign},
		{"bad syscall number", "li $v0, 99\n syscall", TrapBadSyscall},
		{"wild return", "li $ra, 0\n jr $ra", TrapBadPC},
		{"jump past text", "lui $t0, 0x0041\n jr $t0", TrapBadPC},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res := runAsm(t, exitWith(c.body), Config{})
			if res.Outcome != Crash {
				t.Fatalf("outcome = %s, want crash", res.Outcome)
			}
			if res.Trap.Kind != c.kind {
				t.Fatalf("trap = %s, want %s", res.Trap.Kind, c.kind)
			}
		})
	}
}

func TestTimeout(t *testing.T) {
	res := runAsm(t, ".text\n.func __start\nloop:\n\tj loop\n.endfunc\n", Config{MaxInstr: 1000})
	if res.Outcome != Timeout {
		t.Fatalf("outcome = %s, want timeout", res.Outcome)
	}
	if res.Instret != 1000 {
		t.Fatalf("instret = %d, want 1000", res.Instret)
	}
}

func TestMemExhaustion(t *testing.T) {
	// Scribble a word onto a new sparse page each iteration until the page
	// cap trips.
	src := `
.text
.func __start
	lui $t0, 0x4000
loop:
	sw $t0, 0($t0)
	lui $t1, 0x0001
	add $t0, $t0, $t1
	j loop
.endfunc
`
	res := runAsm(t, src, Config{MaxPages: 16})
	if res.Outcome != Crash || res.Trap.Kind != TrapMemExhausted {
		t.Fatalf("outcome = %s trap %s, want memory exhaustion", res.Outcome, res.Trap)
	}
}

func TestCallAndReturn(t *testing.T) {
	src := `
.text
.func __start
	li $a0, 5
	jal double
	move $a0, $v0
	li $v0, 1
	syscall
.endfunc
.func double
	add $v0, $a0, $a0
	jr $ra
.endfunc
`
	res := runAsm(t, src, Config{})
	if res.Outcome != OK || res.ExitCode != 10 {
		t.Fatalf("got %s exit %d, want ok 10", res.Outcome, res.ExitCode)
	}
}

func TestReturnAddressIsArchitectural(t *testing.T) {
	// jal must store TextBase-relative addresses so a corrupted ra of 0
	// lands outside the text segment.
	src := `
.text
.func __start
	jal probe
	move $a0, $v0
	li $v0, 1
	syscall
.endfunc
.func probe
	move $v0, $ra
	jr $ra
.endfunc
`
	res := runAsm(t, src, Config{})
	if res.Outcome != OK {
		t.Fatalf("outcome %s", res.Outcome)
	}
	if uint32(res.ExitCode) != isa.TextBase+1 {
		t.Fatalf("ra = 0x%x, want 0x%x", uint32(res.ExitCode), isa.TextBase+1)
	}
}

func TestSyscallReadWrite(t *testing.T) {
	src := `
.text
.func __start
	li $a0, 0x2000
	li $a1, 8
	li $v0, 5
	syscall              # read up to 8 bytes
	move $t5, $v0        # bytes read
	li $a0, 0x2000
	move $a1, $t5
	li $v0, 4
	syscall              # echo them
	move $a0, $t5
	li $v0, 1
	syscall
.endfunc
`
	res := runAsm(t, src, Config{Input: []byte("hello")})
	if res.Outcome != OK {
		t.Fatalf("outcome %s (%s)", res.Outcome, res.Trap)
	}
	if string(res.Output) != "hello" {
		t.Fatalf("output %q, want hello", res.Output)
	}
	if res.ExitCode != 5 {
		t.Fatalf("read count %d, want 5", res.ExitCode)
	}
}

func TestReadPastEOF(t *testing.T) {
	src := `
.text
.func __start
	li $a0, 0x2000
	li $a1, 8
	li $v0, 5
	syscall
	li $a0, 0x2000
	li $a1, 8
	li $v0, 5
	syscall              # second read: nothing left
	move $a0, $v0
	li $v0, 1
	syscall
.endfunc
`
	res := runAsm(t, src, Config{Input: []byte("abcdefgh")})
	if res.ExitCode != 0 {
		t.Fatalf("second read returned %d, want 0", res.ExitCode)
	}
}

func TestOutputLimit(t *testing.T) {
	src := `
.text
.func __start
loop:
	li $a0, 0x2000
	li $a1, 4096
	li $v0, 4
	syscall
	j loop
.endfunc
`
	res := runAsm(t, src, Config{MaxOutput: 1 << 16})
	if res.Outcome != Crash || res.Trap.Kind != TrapOutputLimit {
		t.Fatalf("outcome = %s trap %s, want output limit", res.Outcome, res.Trap)
	}
}

func TestBranchSemantics(t *testing.T) {
	cases := []struct {
		name   string
		op     string
		v      int32
		expect uint32 // 1 if branch taken
	}{
		{"blez neg", "blez", -5, 1},
		{"blez zero", "blez", 0, 1},
		{"blez pos", "blez", 5, 0},
		{"bgtz pos", "bgtz", 5, 1},
		{"bgtz zero", "bgtz", 0, 0},
		{"bltz neg", "bltz", -1, 1},
		{"bltz zero", "bltz", 0, 0},
		{"bgez zero", "bgez", 0, 1},
		{"bgez neg", "bgez", -1, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			body := "li $t0, " + sprint(c.v) + "\n li $v1, 0\n " + c.op + " $t0, taken\n j done\ntaken:\n li $v1, 1\ndone:"
			expectExit(t, body, c.expect)
		})
	}
}

func sprint(v int32) string {
	if v < 0 {
		return "-" + sprint(-v)
	}
	d := ""
	for {
		d = string(rune('0'+v%10)) + d
		v /= 10
		if v == 0 {
			return d
		}
	}
}

func TestFaultPlanCountsEligible(t *testing.T) {
	src := exitWith("li $t0, 1\n li $t1, 2\n add $v1, $t0, $t1")
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	eligible := make([]bool, len(p.Text))
	for i, in := range p.Text {
		eligible[i] = in.IsInjectable()
	}
	res := Run(p, Config{Plan: &FaultPlan{Eligible: eligible}})
	if res.Outcome != OK {
		t.Fatalf("outcome %s", res.Outcome)
	}
	// li expands to one addi each; plus add, move($v1->OR? move a0), li v0.
	if res.EligibleExec == 0 {
		t.Fatalf("no eligible instructions counted")
	}
	want := uint64(0)
	for i := range p.Text {
		if eligible[i] {
			want++ // every instruction executes exactly once in this program
		}
	}
	if res.EligibleExec != want {
		t.Fatalf("eligible exec = %d, want %d", res.EligibleExec, want)
	}
}

func TestInjectionFlipsScheduledBit(t *testing.T) {
	// Program: v1 = 8; exit v1. Flip bit 1 of the li result -> 10.
	src := exitWith("addi $v1, $zero, 8")
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	eligible := make([]bool, len(p.Text))
	eligible[0] = true // the addi
	res := Run(p, Config{Plan: &FaultPlan{
		Eligible:   eligible,
		Injections: []Injection{{At: 1, Bit: 1}},
	}})
	if res.Outcome != OK {
		t.Fatalf("outcome %s", res.Outcome)
	}
	if res.ExitCode != 10 {
		t.Fatalf("exit = %d, want 10 (8 with bit 1 flipped)", res.ExitCode)
	}
	if res.Injected != 1 {
		t.Fatalf("injected = %d, want 1", res.Injected)
	}
}

func TestInjectionDeterminism(t *testing.T) {
	src := exitWith(`
	li $t5, 0
	li $t6, 0
loop:
	add $t6, $t6, $t5
	addi $t5, $t5, 1
	slti $at, $t5, 50
	bnez $at, loop
	move $v1, $t6`)
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	eligible := make([]bool, len(p.Text))
	for i, in := range p.Text {
		eligible[i] = in.IsInjectable()
	}
	plan := &FaultPlan{Eligible: eligible, Injections: []Injection{{At: 17, Bit: 5}, {At: 60, Bit: 30}}}
	a := Run(p, Config{Plan: plan})
	b := Run(p, Config{Plan: plan})
	if a.Outcome != b.Outcome || a.ExitCode != b.ExitCode || a.Instret != b.Instret {
		t.Fatalf("identical plans diverged: %+v vs %+v", a, b)
	}
}

func TestClassCounts(t *testing.T) {
	res := runAsm(t, exitWith("li $t0, 1\n li $t1, 0x2000\n sw $t0, 0($t1)\n lw $t2, 0($t1)"), Config{})
	if res.ClassCounts[isa.ClassLoad] != 1 {
		t.Fatalf("load count = %d, want 1", res.ClassCounts[isa.ClassLoad])
	}
	if res.ClassCounts[isa.ClassStore] != 1 {
		t.Fatalf("store count = %d, want 1", res.ClassCounts[isa.ClassStore])
	}
	if res.ClassCounts[isa.ClassSys] != 1 {
		t.Fatalf("syscall count = %d, want 1", res.ClassCounts[isa.ClassSys])
	}
	var total uint64
	for _, c := range res.ClassCounts {
		total += c
	}
	if total != res.Instret {
		t.Fatalf("class counts sum %d != instret %d", total, res.Instret)
	}
}
