package sim

import (
	"testing"

	"etap/internal/asm"
)

// TestSiteVisitStreamMatchesEligibleCount: the SiteVisit hook fires once
// per eligible execution, in stream order, with the executing text
// index — the n-th call is eligible-stream ordinal n — and observing the
// stream does not perturb the run.
func TestSiteVisitStreamMatchesEligibleCount(t *testing.T) {
	src := exitWith(`
	li $t5, 0
	li $t6, 0
loop:
	add $t6, $t6, $t5
	addi $t5, $t5, 1
	slti $at, $t5, 10
	bnez $at, loop
	move $v1, $t6`)
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	eligible := make([]bool, len(p.Text))
	for i, in := range p.Text {
		eligible[i] = in.IsInjectable()
	}

	base := Run(p, Config{Plan: &FaultPlan{Eligible: eligible}})

	var pcs []int
	res := Run(p, Config{
		Plan:      &FaultPlan{Eligible: eligible},
		SiteVisit: func(pc int) { pcs = append(pcs, pc) },
	})
	if res.Outcome != base.Outcome || res.ExitCode != base.ExitCode ||
		res.Instret != base.Instret || res.EligibleExec != base.EligibleExec {
		t.Fatalf("SiteVisit perturbed the run: %+v vs %+v", res, base)
	}
	if uint64(len(pcs)) != res.EligibleExec {
		t.Fatalf("SiteVisit fired %d times for %d eligible executions", len(pcs), res.EligibleExec)
	}
	for i, pc := range pcs {
		if pc < 0 || pc >= len(p.Text) || !eligible[pc] {
			t.Fatalf("visit %d reports non-eligible pc %d", i, pc)
		}
	}
}
