// Snapshot/restore support: a Recording runs one golden pass over a
// program, capturing machine checkpoints (registers, PC, instruction and
// eligible-stream counters, input cursor, output length, and the set of
// memory pages dirtied so far) at configurable instruction intervals.
// Faulty trials whose first injection lands late in the dynamic stream can
// then resume from the nearest checkpoint instead of re-simulating from
// instruction zero.
//
// Checkpoint memory is copy-on-write: a restored machine shares the
// checkpoint's page images read-only and copies a page the first time the
// trial writes it, so thousands of concurrent trials can hang off one
// golden pass without duplicating the address space. Restored runs are
// bit-identical to from-scratch runs — same Result down to output bytes,
// trap details and per-class instruction counts — which the campaign
// engine's determinism tests assert across every benchmark.
package sim

import (
	"fmt"
	mathbits "math/bits"
	"time"

	"etap/internal/isa"
)

// Snapshot is one machine checkpoint taken between two instructions of the
// golden pass. The exported fields identify where in the run it was taken;
// the memory image is private and shared copy-on-write between restored
// machines.
type Snapshot struct {
	// Instret is the number of instructions executed before the
	// checkpoint.
	Instret uint64
	// EligCount is the eligible-stream position at the checkpoint: a trial
	// whose first injection ordinal is at most EligCount must start from an
	// earlier checkpoint (or from scratch).
	EligCount uint64
	// PC is the text index of the next instruction.
	PC int

	regs        [isa.NumRegs]uint32
	classCounts [6]uint64
	inPos       int
	outLen      int
	out         []byte // golden output prefix; len == cap so appends copy
	pages       map[uint32]*[pageSize]byte
}

// RecordOptions parameterises checkpoint capture.
type RecordOptions struct {
	// Interval is the initial checkpoint spacing in executed instructions.
	// Defaults to 16384.
	Interval uint64
	// MaxSnapshots bounds the live checkpoint count: when a recording
	// would exceed twice this many, every other checkpoint is dropped and
	// the interval doubles, so arbitrarily long runs keep a bounded,
	// geometrically spaced checkpoint set. Defaults to 128; negative
	// disables the bound.
	MaxSnapshots int
}

func (o RecordOptions) withDefaults() RecordOptions {
	if o.Interval == 0 {
		o.Interval = 16384
	}
	if o.MaxSnapshots == 0 {
		o.MaxSnapshots = 128
	}
	return o
}

// Recording is the product of one golden pass: the clean Result plus the
// checkpoints captured along the way. It is immutable after Record returns
// and safe for concurrent RunFrom calls.
type Recording struct {
	// Result is the golden (fault-free) run outcome.
	Result Result

	prog   *isa.Program
	cfg    Config // defaults applied; Plan/Trace/SiteVisit stripped
	snaps  []*Snapshot
	base   []*[pageSize]byte // initial fast-region image (data segment)
	elig   []bool            // eligibility mask the golden pass counted with
	maskFP uint64            // fingerprint of elig; restores reject other masks
	code   []dinstr          // predecoded stream with elig folded in
}

// maskFingerprint hashes an eligibility mask (FNV-1a over length and
// bools) so a Recording can cheaply reject trial plans built for a
// different mask: checkpoint eligible-stream positions are meaningless
// under any other mask, and a restore would silently mis-place every
// injection.
func maskFingerprint(elig []bool) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	h = (h ^ uint64(len(elig))) * prime64
	for _, b := range elig {
		x := uint64(0)
		if b {
			x = 1
		}
		h = (h ^ x) * prime64
	}
	return h
}

// MaskFingerprint identifies the eligibility mask the golden pass was
// recorded with. Restores (RunFrom with idx >= 0) panic when the trial
// plan's mask does not match it.
func (r *Recording) MaskFingerprint() uint64 { return r.maskFP }

// recorder holds the capture state threaded through the machine during a
// golden pass.
type recorder struct {
	interval uint64
	next     uint64
	maxSnaps int

	fastDirty   []uint64 // bitmap over fast-region page numbers
	sparseDirty map[uint32]struct{}
	cum         map[uint32]*[pageSize]byte // all pages dirtied since run start
	snaps       []*Snapshot
}

func (r *recorder) dirtyFast(pn uint32) {
	r.fastDirty[pn>>6] |= 1 << (pn & 63)
}

func (r *recorder) dirtySparse(pn uint32) {
	r.sparseDirty[pn] = struct{}{}
}

// capture folds pages dirtied since the previous checkpoint into the
// cumulative page map and snapshots the machine state between
// instructions.
func (r *recorder) capture(m *machine) {
	for w, word := range r.fastDirty {
		for word != 0 {
			b := word & -word
			word ^= b
			pn := uint32(w)<<6 + uint32(mathbits.TrailingZeros64(b))
			pg := new([pageSize]byte)
			copy(pg[:], m.mem[pn<<pageShift:])
			r.cum[pn] = pg
		}
		r.fastDirty[w] = 0
	}
	for pn := range r.sparseDirty {
		pg := new([pageSize]byte)
		*pg = *m.pages[pn]
		r.cum[pn] = pg
		delete(r.sparseDirty, pn)
	}
	pages := make(map[uint32]*[pageSize]byte, len(r.cum))
	for pn, pg := range r.cum {
		pages[pn] = pg
	}
	r.snaps = append(r.snaps, &Snapshot{
		Instret:     m.instret,
		EligCount:   m.eligCount,
		PC:          m.pc,
		regs:        [isa.NumRegs]uint32(m.regs[:isa.NumRegs]),
		classCounts: m.classCounts,
		inPos:       m.inPos,
		outLen:      len(m.out),
		pages:       pages,
	})
	r.next += r.interval
	if r.maxSnaps > 0 && len(r.snaps) >= 2*r.maxSnaps {
		kept := r.snaps[:0]
		for _, s := range r.snaps {
			if (s.Instret/r.interval)%2 == 0 {
				kept = append(kept, s)
			}
		}
		r.snaps = kept
		r.interval *= 2
		r.next = r.snaps[len(r.snaps)-1].Instret + r.interval
	}
}

// Record executes the program once under cfg, capturing checkpoints per
// opt. cfg.Plan may carry an eligibility mask (so checkpoints learn their
// eligible-stream position) but no injections — the golden pass must be
// fault-free. cfg.MemSize must be page-aligned so the fast/sparse boundary
// coincides with a page boundary.
func Record(p *isa.Program, cfg Config, opt RecordOptions) (*Recording, error) {
	opt = opt.withDefaults()
	cfg = cfg.normalize()
	if cfg.MemSize%pageSize != 0 {
		return nil, fmt.Errorf("sim: MemSize %d is not a multiple of the %d-byte page", cfg.MemSize, pageSize)
	}
	if cfg.Plan != nil && len(cfg.Plan.Injections) > 0 {
		return nil, fmt.Errorf("sim: cannot record a golden pass with injections scheduled")
	}
	cfg.Trace = nil

	fastPages := cfg.MemSize >> pageShift
	rec := &recorder{
		interval:    opt.Interval,
		next:        opt.Interval,
		maxSnaps:    opt.MaxSnapshots,
		fastDirty:   make([]uint64, (fastPages+63)/64),
		sparseDirty: make(map[uint32]struct{}),
		cum:         make(map[uint32]*[pageSize]byte),
	}
	// The golden pass runs on the reference interpreter: it is the engine
	// that carries the recorder hook, and recording is rare enough that
	// raw speed does not matter.
	m, buf := newScratch(p, cfg)
	m.rec = rec
	var elig []bool
	if cfg.Plan != nil {
		elig = cfg.Plan.Eligible
	}
	start := time.Now()
	m.run()
	recordRunMetrics(simRunsRecord, m.instret, time.Since(start))
	simCheckpoints.Add(float64(len(rec.snaps)))

	res := m.result()
	buf.release()
	for _, s := range rec.snaps {
		s.out = res.Output[:s.outLen:s.outLen]
	}

	// Build the pristine fast-region image once: the data segment split
	// into shared read-only pages. Restored machines overlay checkpoint
	// pages on top of it. Iterating page numbers covers the final partial
	// page even if DataBase is not page-aligned.
	base := make([]*[pageSize]byte, fastPages)
	if len(p.Data) > 0 {
		first := isa.DataBase >> pageShift
		last := (isa.DataBase + uint32(len(p.Data)) - 1) >> pageShift
		for pn := first; pn <= last; pn++ {
			pg := new([pageSize]byte)
			off := int(pn)<<pageShift - int(isa.DataBase) // data offset of the page start
			dst, src := pg[:], p.Data
			if off >= 0 {
				src = p.Data[off:]
			} else {
				dst = pg[-off:]
			}
			copy(dst, src)
			base[pn] = pg
		}
	}

	strip := cfg
	strip.Plan = nil
	strip.SiteVisit = nil
	return &Recording{
		Result: res,
		prog:   p,
		cfg:    strip,
		snaps:  rec.snaps,
		base:   base,
		elig:   elig,
		maskFP: maskFingerprint(elig),
		code:   compile(p.Text, elig),
	}, nil
}

// Snapshots returns the captured checkpoints in execution order.
func (r *Recording) Snapshots() []*Snapshot { return r.snaps }

// SnapshotBefore returns the index of the latest checkpoint strictly
// before the at-th eligible execution (so an injection scheduled at that
// ordinal still fires in the resumed run), or -1 when every checkpoint is
// too late and the trial must run from scratch.
func (r *Recording) SnapshotBefore(at uint64) int {
	lo, hi := 0, len(r.snaps)
	for lo < hi {
		mid := (lo + hi) / 2
		if r.snaps[mid].EligCount < at {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

// RunFrom resumes execution from checkpoint idx under a trial plan and
// instruction budget; idx -1 runs from scratch. The plan's eligibility
// mask must be the one the golden pass was recorded with — checkpoint
// eligible-stream positions are meaningless under any other mask — and a
// restore under a plan whose mask content differs panics rather than
// silently producing garbage (the masks are compared by fingerprint, so
// an equal copy of the recorded mask is fine).
//
// Each call builds and discards the per-trial machine state; callers
// running many trials against one recording should hold a Runner
// (NewRunner) instead, which reuses that state across trials.
func (r *Recording) RunFrom(idx int, plan *FaultPlan, maxInstr uint64) Result {
	rn := r.NewRunner()
	defer rn.Close()
	return rn.RunFrom(idx, plan, maxInstr)
}
