package sim_test

import (
	"bytes"
	"reflect"
	"testing"

	"etap/internal/asm"
	"etap/internal/isa"
	"etap/internal/sim"
)

// snapProgram exercises registers, the stack, sparse pages and output: it
// sums i and i*i over a loop, spills the accumulator to the stack and to a
// far sparse address each iteration, and writes the running value out.
const snapProgram = `
.text
.func __start
	li $t5, 0
	li $t6, 0
	lui $t8, 0x2000
loop:
	add $t6, $t6, $t5
	mul $t7, $t5, $t5
	add $t6, $t6, $t7
	addi $sp, $sp, -4
	sw $t6, 0($sp)
	sw $t6, 0($t8)
	addi $t8, $t8, 4
	addi $t5, $t5, 1
	slti $at, $t5, 500
	bnez $at, loop
	addi $sp, $sp, 2000
	move $a0, $sp
	sw $t6, 0($a0)
	li $a1, 4
	li $v0, 4
	syscall
	move $a0, $t6
	li $v0, 1
	syscall
.endfunc
`

func record(t *testing.T, opt sim.RecordOptions) (*isa.Program, *sim.Recording) {
	t.Helper()
	p, err := asm.Assemble(snapProgram)
	if err != nil {
		t.Fatal(err)
	}
	elig := make([]bool, len(p.Text))
	for i := range elig {
		elig[i] = true
	}
	rec, err := sim.Record(p, sim.Config{Plan: &sim.FaultPlan{Eligible: elig}}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Result.Outcome != sim.OK {
		t.Fatalf("golden outcome %s", rec.Result.Outcome)
	}
	return p, rec
}

func TestRecordCapturesSnapshots(t *testing.T) {
	_, rec := record(t, sim.RecordOptions{Interval: 512})
	snaps := rec.Snapshots()
	if len(snaps) == 0 {
		t.Fatalf("no snapshots captured for a %d-instruction run", rec.Result.Instret)
	}
	var prev uint64
	for i, s := range snaps {
		if s.Instret <= prev && i > 0 {
			t.Fatalf("snapshot %d not after its predecessor: %d <= %d", i, s.Instret, prev)
		}
		if s.EligCount > s.Instret {
			t.Fatalf("snapshot %d eligible count %d exceeds instret %d", i, s.EligCount, s.Instret)
		}
		prev = s.Instret
	}
}

func TestResumeMatchesScratchEverywhere(t *testing.T) {
	p, rec := record(t, sim.RecordOptions{Interval: 512})
	elig := make([]bool, len(p.Text))
	for i := range elig {
		elig[i] = true
	}
	// One trial per snapshot, injecting just after that snapshot's
	// eligible-stream position, plus a no-injection trial from the last.
	for idx, s := range rec.Snapshots() {
		at := s.EligCount + 1
		plan := &sim.FaultPlan{Eligible: elig, Injections: []sim.Injection{{At: at, Bit: uint8(idx % 32)}}}
		scratch := rec.RunFrom(-1, plan, 0)
		resumed := rec.RunFrom(idx, plan, 0)
		if !resultsEqual(scratch, resumed) {
			t.Fatalf("snapshot %d (instret %d): resumed result differs\nscratch: %+v\nresumed: %+v",
				idx, s.Instret, headline(scratch), headline(resumed))
		}
		if scratch.Injected != 1 {
			t.Fatalf("snapshot %d: injection at %d never fired", idx, at)
		}
	}
}

func TestResumeCleanReproducesGolden(t *testing.T) {
	p, rec := record(t, sim.RecordOptions{Interval: 512})
	elig := make([]bool, len(p.Text))
	for i := range elig {
		elig[i] = true
	}
	last := len(rec.Snapshots()) - 1
	res := rec.RunFrom(last, &sim.FaultPlan{Eligible: elig}, 0)
	if !resultsEqual(res, rec.Result) {
		t.Fatalf("clean resume differs from golden run:\ngolden:  %+v\nresumed: %+v",
			headline(rec.Result), headline(res))
	}
}

func TestResumedTrialsAreIsolated(t *testing.T) {
	p, rec := record(t, sim.RecordOptions{Interval: 512})
	elig := make([]bool, len(p.Text))
	for i := range elig {
		elig[i] = true
	}
	snaps := rec.Snapshots()
	idx := len(snaps) / 2
	at := snaps[idx].EligCount + 1
	planA := &sim.FaultPlan{Eligible: elig, Injections: []sim.Injection{{At: at, Bit: 3}}}
	planB := &sim.FaultPlan{Eligible: elig, Injections: []sim.Injection{{At: at, Bit: 17}}}
	a1 := rec.RunFrom(idx, planA, 0)
	// Interleave a different trial off the same snapshot; if COW leaked,
	// the repeat of planA would observe planB's writes.
	rec.RunFrom(idx, planB, 0)
	a2 := rec.RunFrom(idx, planA, 0)
	if !resultsEqual(a1, a2) {
		t.Fatalf("trials sharing a snapshot interfered:\nfirst:  %+v\nsecond: %+v", headline(a1), headline(a2))
	}
}

func TestSnapshotBefore(t *testing.T) {
	_, rec := record(t, sim.RecordOptions{Interval: 512})
	snaps := rec.Snapshots()
	if got := rec.SnapshotBefore(1); got != -1 {
		t.Fatalf("injection at ordinal 1 must run from scratch, got snapshot %d", got)
	}
	for idx, s := range snaps {
		got := rec.SnapshotBefore(s.EligCount + 1)
		if got != idx {
			t.Fatalf("SnapshotBefore(%d) = %d, want %d", s.EligCount+1, got, idx)
		}
		if s.EligCount > 0 {
			if got := rec.SnapshotBefore(s.EligCount); got >= idx {
				t.Fatalf("SnapshotBefore(%d) = %d includes a too-late snapshot %d", s.EligCount, got, idx)
			}
		}
	}
}

// TestSnapshotBeforeBoundary pins both sides of the "strictly before"
// boundary: for an injection at ordinal a, a checkpoint taken at exactly
// EligCount == a must NOT be chosen — a machine resumed there has already
// consumed ordinal a's eligible slot, so the flip would never fire — while
// SnapshotBefore(a+1) may return it. The functional half demonstrates the
// boundary is load-bearing: resuming from the too-late checkpoint silently
// drops the injection.
func TestSnapshotBeforeBoundary(t *testing.T) {
	p, rec := record(t, sim.RecordOptions{Interval: 512})
	elig := make([]bool, len(p.Text))
	for i := range elig {
		elig[i] = true
	}
	snaps := rec.Snapshots()
	for idx, s := range snaps {
		if s.EligCount == 0 {
			continue
		}
		// Table half: the boundary ordinal itself must resolve to an
		// earlier checkpoint; one past it must resolve to exactly idx.
		if got := rec.SnapshotBefore(s.EligCount); got != idx-1 {
			t.Fatalf("SnapshotBefore(%d) = %d, want %d (checkpoint %d sits exactly at the ordinal)",
				s.EligCount, got, idx-1, idx)
		}
		if got := rec.SnapshotBefore(s.EligCount + 1); got != idx {
			t.Fatalf("SnapshotBefore(%d) = %d, want %d", s.EligCount+1, got, idx)
		}
	}
	// Functional half, on one mid-run checkpoint: an injection at exactly
	// the checkpoint's eligible count fires when resumed from
	// SnapshotBefore(at) and is silently lost when resumed from the
	// checkpoint at the boundary.
	idx := len(snaps) / 2
	at := snaps[idx].EligCount
	if at == 0 || idx == 0 {
		t.Fatalf("fixture too small: snapshot %d has eligible count %d", idx, at)
	}
	plan := &sim.FaultPlan{Eligible: elig, Injections: []sim.Injection{{At: at, Bit: 7}}}
	good := rec.RunFrom(rec.SnapshotBefore(at), plan, 0)
	if good.Injected != 1 {
		t.Fatalf("injection at %d resumed from SnapshotBefore: fired %d times, want 1", at, good.Injected)
	}
	if !resultsEqual(good, rec.RunFrom(-1, plan, 0)) {
		t.Fatal("boundary-correct resume differs from scratch")
	}
	late := rec.RunFrom(idx, plan, 0)
	if late.Injected != 0 {
		t.Fatalf("checkpoint at the injection ordinal still fired %d flips; boundary semantics changed", late.Injected)
	}
}

func TestRecordPrunesToBound(t *testing.T) {
	p, rec := record(t, sim.RecordOptions{Interval: 64, MaxSnapshots: 4})
	elig := make([]bool, len(p.Text))
	for i := range elig {
		elig[i] = true
	}
	if n := len(rec.Snapshots()); n >= 8 {
		t.Fatalf("pruning kept %d snapshots with MaxSnapshots=4", n)
	}
	// Pruned recordings must still resume exactly.
	snaps := rec.Snapshots()
	last := len(snaps) - 1
	if last < 0 {
		t.Fatal("no snapshots survived pruning")
	}
	res := rec.RunFrom(last, &sim.FaultPlan{Eligible: elig}, 0)
	if !resultsEqual(res, rec.Result) {
		t.Fatalf("pruned resume differs from golden run")
	}
}

// TestThinnedRecordingRestoresEverywhere pins snapshot thinning: after
// maxSnaps compaction has run (possibly several times), the surviving
// checkpoints must keep a uniform cadence — recomputing `next` from the
// last kept snapshot must not let the post-thin interval drift — and every
// surviving checkpoint must still restore bit-identically.
func TestThinnedRecordingRestoresEverywhere(t *testing.T) {
	p, rec := record(t, sim.RecordOptions{Interval: 64, MaxSnapshots: 4})
	elig := make([]bool, len(p.Text))
	for i := range elig {
		elig[i] = true
	}
	snaps := rec.Snapshots()
	if len(snaps) < 3 {
		t.Fatalf("fixture too small: %d snapshots survived", len(snaps))
	}
	if len(snaps) >= 8 {
		t.Fatalf("thinning kept %d snapshots with MaxSnapshots=4", len(snaps))
	}
	// The run is long enough to force thinning at least once, so the
	// surviving spacing must be a power-of-two multiple of the initial
	// interval and identical between every adjacent pair.
	delta := snaps[1].Instret - snaps[0].Instret
	if delta <= 64 || delta%64 != 0 {
		t.Fatalf("post-thin interval %d is not a doubled multiple of the initial 64", delta)
	}
	for i := 1; i < len(snaps); i++ {
		if d := snaps[i].Instret - snaps[i-1].Instret; d != delta {
			t.Fatalf("snapshot cadence drifts after thinning: delta[%d]=%d, delta[1]=%d", i, d, delta)
		}
	}
	if snaps[0].Instret != delta {
		t.Fatalf("first surviving snapshot at instret %d, want one full interval %d", snaps[0].Instret, delta)
	}
	// Restore fidelity at every surviving ordinal, with an injection just
	// past each checkpoint so the eligible-stream position matters too.
	for idx, s := range snaps {
		plan := &sim.FaultPlan{Eligible: elig, Injections: []sim.Injection{{At: s.EligCount + 1, Bit: uint8(idx % 32)}}}
		scratch := rec.RunFrom(-1, plan, 0)
		resumed := rec.RunFrom(idx, plan, 0)
		if !resultsEqual(scratch, resumed) {
			t.Fatalf("thinned snapshot %d (instret %d) restores differently\nscratch: %+v\nresumed: %+v",
				idx, s.Instret, headline(scratch), headline(resumed))
		}
		if resumed.Injected != 1 {
			t.Fatalf("thinned snapshot %d: injection at %d never fired", idx, s.EligCount+1)
		}
	}
}

func TestRecordRejectsBadConfig(t *testing.T) {
	p, err := asm.Assemble(snapProgram)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Record(p, sim.Config{MemSize: 12345}, sim.RecordOptions{}); err == nil {
		t.Fatal("unaligned MemSize accepted")
	}
	bad := sim.Config{Plan: &sim.FaultPlan{Injections: []sim.Injection{{At: 1}}}}
	if _, err := sim.Record(p, bad, sim.RecordOptions{}); err == nil {
		t.Fatal("golden pass with injections accepted")
	}
}

func resultsEqual(a, b sim.Result) bool {
	return a.Outcome == b.Outcome &&
		a.Trap == b.Trap &&
		a.ExitCode == b.ExitCode &&
		a.Instret == b.Instret &&
		a.EligibleExec == b.EligibleExec &&
		a.Injected == b.Injected &&
		bytes.Equal(a.Output, b.Output) &&
		reflect.DeepEqual(a.ClassCounts, b.ClassCounts)
}

func headline(r sim.Result) string {
	return r.Outcome.String() + "/" + r.Trap.String()
}
