package sim_test

import (
	"bytes"
	"reflect"
	"testing"

	"etap/internal/asm"
	"etap/internal/isa"
	"etap/internal/sim"
)

// snapProgram exercises registers, the stack, sparse pages and output: it
// sums i and i*i over a loop, spills the accumulator to the stack and to a
// far sparse address each iteration, and writes the running value out.
const snapProgram = `
.text
.func __start
	li $t5, 0
	li $t6, 0
	lui $t8, 0x2000
loop:
	add $t6, $t6, $t5
	mul $t7, $t5, $t5
	add $t6, $t6, $t7
	addi $sp, $sp, -4
	sw $t6, 0($sp)
	sw $t6, 0($t8)
	addi $t8, $t8, 4
	addi $t5, $t5, 1
	slti $at, $t5, 500
	bnez $at, loop
	addi $sp, $sp, 2000
	move $a0, $sp
	sw $t6, 0($a0)
	li $a1, 4
	li $v0, 4
	syscall
	move $a0, $t6
	li $v0, 1
	syscall
.endfunc
`

func record(t *testing.T, opt sim.RecordOptions) (*isa.Program, *sim.Recording) {
	t.Helper()
	p, err := asm.Assemble(snapProgram)
	if err != nil {
		t.Fatal(err)
	}
	elig := make([]bool, len(p.Text))
	for i := range elig {
		elig[i] = true
	}
	rec, err := sim.Record(p, sim.Config{Plan: &sim.FaultPlan{Eligible: elig}}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Result.Outcome != sim.OK {
		t.Fatalf("golden outcome %s", rec.Result.Outcome)
	}
	return p, rec
}

func TestRecordCapturesSnapshots(t *testing.T) {
	_, rec := record(t, sim.RecordOptions{Interval: 512})
	snaps := rec.Snapshots()
	if len(snaps) == 0 {
		t.Fatalf("no snapshots captured for a %d-instruction run", rec.Result.Instret)
	}
	var prev uint64
	for i, s := range snaps {
		if s.Instret <= prev && i > 0 {
			t.Fatalf("snapshot %d not after its predecessor: %d <= %d", i, s.Instret, prev)
		}
		if s.EligCount > s.Instret {
			t.Fatalf("snapshot %d eligible count %d exceeds instret %d", i, s.EligCount, s.Instret)
		}
		prev = s.Instret
	}
}

func TestResumeMatchesScratchEverywhere(t *testing.T) {
	p, rec := record(t, sim.RecordOptions{Interval: 512})
	elig := make([]bool, len(p.Text))
	for i := range elig {
		elig[i] = true
	}
	// One trial per snapshot, injecting just after that snapshot's
	// eligible-stream position, plus a no-injection trial from the last.
	for idx, s := range rec.Snapshots() {
		at := s.EligCount + 1
		plan := &sim.FaultPlan{Eligible: elig, Injections: []sim.Injection{{At: at, Bit: uint8(idx % 32)}}}
		scratch := rec.RunFrom(-1, plan, 0)
		resumed := rec.RunFrom(idx, plan, 0)
		if !resultsEqual(scratch, resumed) {
			t.Fatalf("snapshot %d (instret %d): resumed result differs\nscratch: %+v\nresumed: %+v",
				idx, s.Instret, headline(scratch), headline(resumed))
		}
		if scratch.Injected != 1 {
			t.Fatalf("snapshot %d: injection at %d never fired", idx, at)
		}
	}
}

func TestResumeCleanReproducesGolden(t *testing.T) {
	p, rec := record(t, sim.RecordOptions{Interval: 512})
	elig := make([]bool, len(p.Text))
	for i := range elig {
		elig[i] = true
	}
	last := len(rec.Snapshots()) - 1
	res := rec.RunFrom(last, &sim.FaultPlan{Eligible: elig}, 0)
	if !resultsEqual(res, rec.Result) {
		t.Fatalf("clean resume differs from golden run:\ngolden:  %+v\nresumed: %+v",
			headline(rec.Result), headline(res))
	}
}

func TestResumedTrialsAreIsolated(t *testing.T) {
	p, rec := record(t, sim.RecordOptions{Interval: 512})
	elig := make([]bool, len(p.Text))
	for i := range elig {
		elig[i] = true
	}
	snaps := rec.Snapshots()
	idx := len(snaps) / 2
	at := snaps[idx].EligCount + 1
	planA := &sim.FaultPlan{Eligible: elig, Injections: []sim.Injection{{At: at, Bit: 3}}}
	planB := &sim.FaultPlan{Eligible: elig, Injections: []sim.Injection{{At: at, Bit: 17}}}
	a1 := rec.RunFrom(idx, planA, 0)
	// Interleave a different trial off the same snapshot; if COW leaked,
	// the repeat of planA would observe planB's writes.
	rec.RunFrom(idx, planB, 0)
	a2 := rec.RunFrom(idx, planA, 0)
	if !resultsEqual(a1, a2) {
		t.Fatalf("trials sharing a snapshot interfered:\nfirst:  %+v\nsecond: %+v", headline(a1), headline(a2))
	}
}

func TestSnapshotBefore(t *testing.T) {
	_, rec := record(t, sim.RecordOptions{Interval: 512})
	snaps := rec.Snapshots()
	if got := rec.SnapshotBefore(1); got != -1 {
		t.Fatalf("injection at ordinal 1 must run from scratch, got snapshot %d", got)
	}
	for idx, s := range snaps {
		got := rec.SnapshotBefore(s.EligCount + 1)
		if got != idx {
			t.Fatalf("SnapshotBefore(%d) = %d, want %d", s.EligCount+1, got, idx)
		}
		if s.EligCount > 0 {
			if got := rec.SnapshotBefore(s.EligCount); got >= idx {
				t.Fatalf("SnapshotBefore(%d) = %d includes a too-late snapshot %d", s.EligCount, got, idx)
			}
		}
	}
}

func TestRecordPrunesToBound(t *testing.T) {
	p, rec := record(t, sim.RecordOptions{Interval: 64, MaxSnapshots: 4})
	elig := make([]bool, len(p.Text))
	for i := range elig {
		elig[i] = true
	}
	if n := len(rec.Snapshots()); n >= 8 {
		t.Fatalf("pruning kept %d snapshots with MaxSnapshots=4", n)
	}
	// Pruned recordings must still resume exactly.
	snaps := rec.Snapshots()
	last := len(snaps) - 1
	if last < 0 {
		t.Fatal("no snapshots survived pruning")
	}
	res := rec.RunFrom(last, &sim.FaultPlan{Eligible: elig}, 0)
	if !resultsEqual(res, rec.Result) {
		t.Fatalf("pruned resume differs from golden run")
	}
}

func TestRecordRejectsBadConfig(t *testing.T) {
	p, err := asm.Assemble(snapProgram)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Record(p, sim.Config{MemSize: 12345}, sim.RecordOptions{}); err == nil {
		t.Fatal("unaligned MemSize accepted")
	}
	bad := sim.Config{Plan: &sim.FaultPlan{Injections: []sim.Injection{{At: 1}}}}
	if _, err := sim.Record(p, bad, sim.RecordOptions{}); err == nil {
		t.Fatal("golden pass with injections accepted")
	}
}

func resultsEqual(a, b sim.Result) bool {
	return a.Outcome == b.Outcome &&
		a.Trap == b.Trap &&
		a.ExitCode == b.ExitCode &&
		a.Instret == b.Instret &&
		a.EligibleExec == b.EligibleExec &&
		a.Injected == b.Injected &&
		bytes.Equal(a.Output, b.Output) &&
		reflect.DeepEqual(a.ClassCounts, b.ClassCounts)
}

func headline(r sim.Result) string {
	return r.Outcome.String() + "/" + r.Trap.String()
}
