// Package termprog renders live, self-overwriting progress lines for
// the CLIs. It keeps per-trial observers cheap: writes are throttled to
// a fixed interval, and suppressed entirely when the writer is not a
// terminal — piped stderr (CI logs, scripts) sees no control-character
// spam, and campaigns with hundreds of thousands of trials do not
// serialize a formatted write per trial on the aggregation goroutine.
package termprog

import (
	"fmt"
	"io"
	"os"
	"time"
)

// Printer writes throttled \r-overwriting progress lines to one
// terminal writer. The zero value is unusable; construct with New. A
// Printer is not safe for concurrent use (campaign observers run on a
// single goroutine).
type Printer struct {
	w       io.Writer
	enabled bool
	last    time.Time
	shown   bool
}

// interval caps progress rendering at ~10 lines a second.
const interval = 100 * time.Millisecond

// New builds a Printer for w. Progress renders only when w is a
// character device (an interactive terminal); otherwise every call is a
// no-op.
func New(w io.Writer) *Printer {
	p := &Printer{w: w}
	if f, ok := w.(*os.File); ok {
		if st, err := f.Stat(); err == nil && st.Mode()&os.ModeCharDevice != 0 {
			p.enabled = true
		}
	}
	return p
}

// Printf overwrites the current progress line, at most once per
// throttle interval.
func (p *Printer) Printf(format string, args ...any) {
	if !p.enabled {
		return
	}
	if now := time.Now(); now.Sub(p.last) >= interval {
		fmt.Fprintf(p.w, "\r"+format, args...)
		p.last = now
		p.shown = true
	}
}

// Clear erases the progress line so subsequent output starts on a clean
// one.
func (p *Printer) Clear() {
	if p.shown {
		fmt.Fprint(p.w, "\r\033[K")
		p.shown = false
		p.last = time.Time{}
	}
}
