// Package textplot renders the experiment harness's tables and figures as
// plain text: aligned tables and simple ASCII line charts, enough to
// eyeball the shapes the paper's figures show.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Table renders rows under headers with aligned columns.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

// Series is one named line on a chart.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// Chart renders series on a w×h character grid with axes and a legend.
// Nonfinite points are skipped.
func Chart(title, xlabel, ylabel string, w, h int, series []Series) string {
	if w < 20 {
		w = 20
	}
	if h < 6 {
		h = 6
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			if !finite(s.X[i]) || !finite(s.Y[i]) {
				continue
			}
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	if minX > maxX { // nothing to plot
		return title + "\n(no data)\n"
	}
	if minY == maxY {
		minY, maxY = minY-1, maxY+1
	}
	if minX == maxX {
		minX, maxX = minX-1, maxX+1
	}
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	plot := func(x, y float64, m byte) {
		cx := int(math.Round((x - minX) / (maxX - minX) * float64(w-1)))
		cy := int(math.Round((y - minY) / (maxY - minY) * float64(h-1)))
		row := h - 1 - cy
		if row >= 0 && row < h && cx >= 0 && cx < w {
			grid[row][cx] = m
		}
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		// Linear interpolation between consecutive points gives a line
		// impression.
		for i := 0; i+1 < len(s.X); i++ {
			if !finite(s.X[i]) || !finite(s.Y[i]) || !finite(s.X[i+1]) || !finite(s.Y[i+1]) {
				continue
			}
			steps := 2 * w
			for t := 0; t <= steps; t++ {
				f := float64(t) / float64(steps)
				plot(s.X[i]+f*(s.X[i+1]-s.X[i]), s.Y[i]+f*(s.Y[i+1]-s.Y[i]), m)
			}
		}
		for i := range s.X {
			if finite(s.X[i]) && finite(s.Y[i]) {
				plot(s.X[i], s.Y[i], m)
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%s\n", ylabel)
	topLabel := trimNum(maxY)
	botLabel := trimNum(minY)
	lw := len(topLabel)
	if len(botLabel) > lw {
		lw = len(botLabel)
	}
	for i, row := range grid {
		label := strings.Repeat(" ", lw)
		switch i {
		case 0:
			label = fmt.Sprintf("%*s", lw, topLabel)
		case h - 1:
			label = fmt.Sprintf("%*s", lw, botLabel)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", lw), strings.Repeat("-", w))
	fmt.Fprintf(&b, "%s  %-*s%s\n", strings.Repeat(" ", lw), w-len(trimNum(maxX)), trimNum(minX), trimNum(maxX))
	fmt.Fprintf(&b, "%s  %s\n", strings.Repeat(" ", lw), xlabel)
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

func finite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

func trimNum(f float64) string {
	s := fmt.Sprintf("%.1f", f)
	s = strings.TrimSuffix(s, ".0")
	return s
}
