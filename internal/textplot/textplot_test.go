package textplot

import (
	"math"
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"name", "value"}, [][]string{
		{"a", "1"},
		{"longer", "22"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Fatalf("header: %q", lines[0])
	}
	if !strings.Contains(lines[1], "----") {
		t.Fatalf("separator: %q", lines[1])
	}
	// Columns align: "value" starts at the same offset in each row.
	off := strings.Index(lines[0], "value")
	if lines[2][off:off+1] != "1" || lines[3][off:off+2] != "22" {
		t.Fatalf("misaligned columns:\n%s", out)
	}
}

func TestChartContainsMarkersAndLegend(t *testing.T) {
	out := Chart("title", "x", "y", 40, 10, []Series{
		{Name: "up", X: []float64{0, 1, 2}, Y: []float64{0, 5, 10}},
		{Name: "down", X: []float64{0, 1, 2}, Y: []float64{10, 5, 0}},
	})
	for _, want := range []string{"title", "x", "y", "* up", "o down", "*", "o"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "10") || !strings.Contains(out, "0") {
		t.Fatalf("chart missing y labels:\n%s", out)
	}
}

func TestChartEmptySeries(t *testing.T) {
	out := Chart("t", "x", "y", 30, 8, nil)
	if !strings.Contains(out, "no data") {
		t.Fatalf("empty chart: %q", out)
	}
}

func TestChartSkipsNaN(t *testing.T) {
	out := Chart("t", "x", "y", 30, 8, []Series{
		{Name: "s", X: []float64{0, 1, 2}, Y: []float64{1, math.NaN(), 3}},
	})
	if strings.Contains(out, "NaN") {
		t.Fatalf("chart printed NaN:\n%s", out)
	}
}

func TestChartFlatLine(t *testing.T) {
	// A constant series must not divide by zero.
	out := Chart("t", "x", "y", 30, 8, []Series{
		{Name: "s", X: []float64{0, 1}, Y: []float64{5, 5}},
	})
	if !strings.Contains(out, "*") {
		t.Fatalf("flat line not drawn:\n%s", out)
	}
}

func TestChartSinglePoint(t *testing.T) {
	out := Chart("t", "x", "y", 30, 8, []Series{
		{Name: "s", X: []float64{3}, Y: []float64{7}},
	})
	if !strings.Contains(out, "*") {
		t.Fatalf("single point not drawn:\n%s", out)
	}
}
