// Package version reports the build's identity — module version, VCS
// revision and Go toolchain — from the information the linker stamps
// into every binary via runtime/debug.ReadBuildInfo. Every cmd/ main
// exposes it behind a -version flag, the service reports it from
// /api/v1/healthz, and cmd/etbench names its BENCH_<rev>.json artifact
// after the short revision, so a perf number is always attributable to
// the exact commit that produced it.
package version

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
)

// Info is the build identity.
type Info struct {
	// Module is the main module's version ("(devel)" for builds from a
	// working tree, a semver tag for released builds).
	Module string `json:"module"`
	// Revision is the full VCS revision the binary was built from, or
	// "unknown" when the build had no VCS metadata (e.g. go test
	// binaries or -buildvcs=false).
	Revision string `json:"revision"`
	// Dirty reports uncommitted changes in the build's working tree.
	Dirty bool `json:"dirty,omitempty"`
	// Go is the toolchain that built the binary.
	Go string `json:"go"`
}

// Get reads the build identity stamped into the running binary.
func Get() Info {
	info := Info{Module: "(devel)", Revision: "unknown", Go: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	if bi.Main.Version != "" {
		info.Module = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.modified":
			info.Dirty = s.Value == "true"
		}
	}
	return info
}

// Short is the 12-character revision prefix (or the whole revision when
// shorter), with a "-dirty" suffix for modified working trees — the
// form BENCH artifacts and status lines use.
func (i Info) Short() string {
	rev := i.Revision
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if i.Dirty {
		rev += "-dirty"
	}
	return rev
}

// String renders the one-line form the -version flags print.
func (i Info) String() string {
	return fmt.Sprintf("%s (rev %s, %s)", i.Module, i.Short(), i.Go)
}

// Fprint writes "<prog> <identity>" — the body of every cmd/ main's
// -version flag.
func Fprint(w io.Writer, prog string) {
	fmt.Fprintf(w, "%s %s\n", prog, Get())
}
