package etap

import (
	"container/list"
	"fmt"
	"sync"
)

// Lab is a session cache for compiled systems: it memoizes Build and
// Harden results per (source, policy, harden-options) key so concurrent
// callers — a characterization service, a sweep over many inputs, a test
// harness — never recompile or re-analyze the same program twice.
// Systems and HardenedSystems are immutable after construction and safe
// to share; campaign construction (which records a golden pass per
// input) stays with the caller.
//
// A Lab is safe for concurrent use. Concurrent requests for the same key
// block on one build; requests for different keys build in parallel.
//
// The cache is bounded: once it holds Capacity distinct keys, inserting
// a new one evicts the least-recently-used entry (failed builds are
// cached and evicted the same way). Eviction never breaks callers
// already waiting on an entry — they keep their result; the key is
// simply rebuilt on its next miss.
type Lab struct {
	mu        sync.Mutex
	entries   map[labKey]*labEntry
	order     *list.List // front = most recently used; values are labKey
	capacity  int
	builds    int64
	hits      int64
	evictions int64
}

// DefaultLabCapacity is the entry bound NewLab applies.
const DefaultLabCapacity = 128

type labKey struct {
	source   string
	policy   Policy
	hardened bool
	harden   HardenOptions
}

type labEntry struct {
	once sync.Once
	sys  *System
	hard *HardenedSystem
	err  error
	elem *list.Element
}

// NewLab creates an empty session cache bounded at DefaultLabCapacity
// entries.
func NewLab() *Lab { return NewLabCapacity(DefaultLabCapacity) }

// NewLabCapacity creates an empty session cache holding at most capacity
// (source, policy, harden) keys, evicting least-recently-used entries
// beyond that. A capacity of zero or less means unbounded — the pre-LRU
// behaviour, appropriate only when the key population is known and
// finite.
func NewLabCapacity(capacity int) *Lab {
	return &Lab{
		entries:  make(map[labKey]*labEntry),
		order:    list.New(),
		capacity: capacity,
	}
}

func (l *Lab) entry(key labKey) *labEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	if e, ok := l.entries[key]; ok {
		l.hits++
		l.order.MoveToFront(e.elem)
		return e
	}
	e := &labEntry{}
	e.elem = l.order.PushFront(key)
	l.entries[key] = e
	if l.capacity > 0 {
		for len(l.entries) > l.capacity {
			back := l.order.Back()
			evict := back.Value.(labKey)
			l.order.Remove(back)
			delete(l.entries, evict)
			l.evictions++
		}
	}
	return e
}

// Build compiles and analyzes source under policy, or returns the cached
// System from an earlier call with the same key.
func (l *Lab) Build(source string, policy Policy) (*System, error) {
	e := l.entry(labKey{source: source, policy: policy})
	e.once.Do(func() {
		l.countBuild()
		e.sys, e.err = Build(source, policy)
	})
	return e.sys, e.err
}

// BuildBenchmark is Build over a registered benchmark's source.
func (l *Lab) BuildBenchmark(name string, policy Policy) (*System, error) {
	b, ok := BenchmarkByName(name)
	if !ok {
		return nil, fmt.Errorf("etap: unknown benchmark %q", name)
	}
	return l.Build(b.Source(), policy)
}

// Harden returns the hardened system for (source, policy, opts),
// building and caching both the base System and the hardened rewrite on
// first use. The base compile is shared with Build: hardening a source
// the Lab already built reuses the analysis instead of recompiling.
func (l *Lab) Harden(source string, policy Policy, opts HardenOptions) (*HardenedSystem, error) {
	e := l.entry(labKey{source: source, policy: policy, hardened: true, harden: opts})
	e.once.Do(func() {
		sys, err := l.Build(source, policy)
		if err != nil {
			e.err = err
			return
		}
		l.countBuild()
		e.hard, e.err = sys.Harden(opts)
	})
	return e.hard, e.err
}

// Len reports how many distinct (source, policy, harden) keys the Lab
// has cached, counting entries that failed to build.
func (l *Lab) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Builds reports how many cache misses the Lab has actually paid for —
// compiles plus harden rewrites performed, not served from cache. In a
// service sharing one Lab, N concurrent submissions of one key raise it
// by exactly one.
func (l *Lab) Builds() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.builds
}

// Hits reports how many entry lookups were served from cache (the
// complement of Builds over the Lab's lifetime). A Harden call that
// reuses an already-built base System counts one hit for the base key.
func (l *Lab) Hits() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.hits
}

// Evictions reports how many entries the LRU bound has discarded.
func (l *Lab) Evictions() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.evictions
}

func (l *Lab) countBuild() {
	l.mu.Lock()
	l.builds++
	l.mu.Unlock()
}
