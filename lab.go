package etap

import (
	"fmt"
	"sync"
)

// Lab is a session cache for compiled systems: it memoizes Build and
// Harden results per (source, policy, harden-options) key so concurrent
// callers — a characterization service, a sweep over many inputs, a test
// harness — never recompile or re-analyze the same program twice.
// Systems and HardenedSystems are immutable after construction and safe
// to share; campaign construction (which records a golden pass per
// input) stays with the caller.
//
// A Lab is safe for concurrent use. Concurrent requests for the same key
// block on one build; requests for different keys build in parallel.
type Lab struct {
	mu      sync.Mutex
	entries map[labKey]*labEntry
}

type labKey struct {
	source   string
	policy   Policy
	hardened bool
	harden   HardenOptions
}

type labEntry struct {
	once sync.Once
	sys  *System
	hard *HardenedSystem
	err  error
}

// NewLab creates an empty session cache.
func NewLab() *Lab {
	return &Lab{entries: make(map[labKey]*labEntry)}
}

func (l *Lab) entry(key labKey) *labEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.entries[key]
	if !ok {
		e = &labEntry{}
		l.entries[key] = e
	}
	return e
}

// Build compiles and analyzes source under policy, or returns the cached
// System from an earlier call with the same key.
func (l *Lab) Build(source string, policy Policy) (*System, error) {
	e := l.entry(labKey{source: source, policy: policy})
	e.once.Do(func() {
		e.sys, e.err = Build(source, policy)
	})
	return e.sys, e.err
}

// BuildBenchmark is Build over a registered benchmark's source.
func (l *Lab) BuildBenchmark(name string, policy Policy) (*System, error) {
	b, ok := BenchmarkByName(name)
	if !ok {
		return nil, fmt.Errorf("etap: unknown benchmark %q", name)
	}
	return l.Build(b.Source(), policy)
}

// Harden returns the hardened system for (source, policy, opts),
// building and caching both the base System and the hardened rewrite on
// first use. The base compile is shared with Build: hardening a source
// the Lab already built reuses the analysis instead of recompiling.
func (l *Lab) Harden(source string, policy Policy, opts HardenOptions) (*HardenedSystem, error) {
	e := l.entry(labKey{source: source, policy: policy, hardened: true, harden: opts})
	e.once.Do(func() {
		sys, err := l.Build(source, policy)
		if err != nil {
			e.err = err
			return
		}
		e.hard, e.err = sys.Harden(opts)
	})
	return e.hard, e.err
}

// Len reports how many distinct (source, policy, harden) keys the Lab
// has cached, counting entries that failed to build.
func (l *Lab) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}
