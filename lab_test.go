package etap

import (
	"fmt"
	"sync"
	"testing"
)

// labSources returns n distinct compilable programs, so each occupies
// its own Lab key.
func labSources(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf(`
tolerant int scale(int x) { return x * %d; }
int main() { outb(scale(inb())); return 0; }
`, i+2)
	}
	return out
}

func TestLabLRUEviction(t *testing.T) {
	lab := NewLabCapacity(2)
	srcs := labSources(3)

	if _, err := lab.Build(srcs[0], PolicyControlAddr); err != nil {
		t.Fatal(err)
	}
	if _, err := lab.Build(srcs[1], PolicyControlAddr); err != nil {
		t.Fatal(err)
	}
	if got := lab.Len(); got != 2 {
		t.Fatalf("lab holds %d entries, want 2", got)
	}
	// Touch srcs[0] so srcs[1] is the LRU victim.
	if _, err := lab.Build(srcs[0], PolicyControlAddr); err != nil {
		t.Fatal(err)
	}
	if got := lab.Builds(); got != 2 {
		t.Fatalf("cache hit recompiled: %d builds, want 2", got)
	}
	// Inserting a third key must evict exactly one entry.
	if _, err := lab.Build(srcs[2], PolicyControlAddr); err != nil {
		t.Fatal(err)
	}
	if got := lab.Len(); got != 2 {
		t.Fatalf("lab holds %d entries after eviction, want 2", got)
	}
	// srcs[0] was recently used and must still be cached...
	if _, err := lab.Build(srcs[0], PolicyControlAddr); err != nil {
		t.Fatal(err)
	}
	if got := lab.Builds(); got != 3 {
		t.Fatalf("recently-used entry was evicted: %d builds, want 3", got)
	}
	// ...while srcs[1] was evicted and recompiles on miss.
	s, err := lab.Build(srcs[1], PolicyControlAddr)
	if err != nil {
		t.Fatal(err)
	}
	if s == nil {
		t.Fatal("recompile on miss returned nil system")
	}
	if got := lab.Builds(); got != 4 {
		t.Fatalf("evicted entry did not recompile: %d builds, want 4", got)
	}
}

func TestLabHitAndEvictionCounters(t *testing.T) {
	lab := NewLabCapacity(2)
	srcs := labSources(3)
	for _, src := range srcs[:2] {
		if _, err := lab.Build(src, PolicyControlAddr); err != nil {
			t.Fatal(err)
		}
	}
	if got := lab.Hits(); got != 0 {
		t.Fatalf("cold cache reported %d hits, want 0", got)
	}
	if _, err := lab.Build(srcs[0], PolicyControlAddr); err != nil {
		t.Fatal(err)
	}
	if got := lab.Hits(); got != 1 {
		t.Fatalf("cache hit count = %d, want 1", got)
	}
	if got := lab.Evictions(); got != 0 {
		t.Fatalf("evictions before overflow = %d, want 0", got)
	}
	if _, err := lab.Build(srcs[2], PolicyControlAddr); err != nil {
		t.Fatal(err)
	}
	if got := lab.Evictions(); got != 1 {
		t.Fatalf("evictions after overflow = %d, want 1", got)
	}
}

func TestLabUnboundedCapacity(t *testing.T) {
	lab := NewLabCapacity(0)
	for _, src := range labSources(5) {
		if _, err := lab.Build(src, PolicyControl); err != nil {
			t.Fatal(err)
		}
	}
	if got := lab.Len(); got != 5 {
		t.Fatalf("unbounded lab evicted: %d entries, want 5", got)
	}
}

func TestLabBuildsCounter(t *testing.T) {
	lab := NewLab()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := lab.Build(testSource, PolicyControlAddr); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := lab.Builds(); got != 1 {
		t.Fatalf("concurrent identical submissions paid %d builds, want 1", got)
	}
	// Harden shares the cached base compile and counts one more build
	// (the rewrite), not two.
	if _, err := lab.Harden(testSource, PolicyControlAddr, DefaultHardenOptions()); err != nil {
		t.Fatal(err)
	}
	if got := lab.Builds(); got != 2 {
		t.Fatalf("harden over a cached base paid %d builds, want 2", got)
	}
}
