package etap

import (
	"context"
	"fmt"
	"testing"

	"etap/internal/obs"
	obstrace "etap/internal/obs/trace"
)

// TestMetricsDoNotPerturbResults is the observability plane's core
// guarantee: instrumentation observes campaigns, it never feeds back
// into them. The same campaign run with metric collection disabled and
// enabled must produce byte-identical rendered results — same trial
// outcomes, same aggregates, same ordering. (The rendering is %+v of
// the point stats rather than JSON: several rate fields are NaN at low
// error counts, which JSON cannot encode.)
func TestMetricsDoNotPerturbResults(t *testing.T) {
	runOnce := func(t *testing.T) string {
		t.Helper()
		sys, err := Build(testSource, PolicyControlAddr)
		if err != nil {
			t.Fatal(err)
		}
		camp, err := sys.NewCampaign(testInput(), true)
		if err != nil {
			t.Fatal(err)
		}
		var points []PointStats
		for _, n := range []int{1, 4} {
			points = append(points, camp.RunPoint(bgctx, n,
				WithTrials(24), WithSeed(11), WithWorkers(4)))
		}
		return fmt.Sprintf("%+v", points)
	}

	reg := obs.Default()
	reg.SetEnabled(false)
	disabled := runOnce(t)
	reg.SetEnabled(true)
	defer reg.SetEnabled(true)
	enabled := runOnce(t)

	if disabled != enabled {
		t.Fatalf("campaign results depend on metric collection:\ndisabled: %s\nenabled:  %s",
			disabled, enabled)
	}
}

// TestTracingDoesNotPerturbResults extends the guard to the span
// subsystem: the same campaign run untraced and run under a root span
// (every point and shard creating spans and recording trial events)
// must produce byte-identical results. Spans observe the campaign; they
// never feed back into RNG streams, trial ordering or aggregation.
func TestTracingDoesNotPerturbResults(t *testing.T) {
	runOnce := func(t *testing.T, ctx context.Context) string {
		t.Helper()
		sys, err := Build(testSource, PolicyControlAddr)
		if err != nil {
			t.Fatal(err)
		}
		camp, err := sys.NewCampaign(testInput(), true)
		if err != nil {
			t.Fatal(err)
		}
		var points []PointStats
		for _, n := range []int{1, 4} {
			points = append(points, camp.RunPoint(ctx, n,
				WithTrials(24), WithSeed(11), WithWorkers(4)))
		}
		return fmt.Sprintf("%+v", points)
	}

	untraced := runOnce(t, bgctx)

	tracer := obstrace.New(obstrace.Config{Registry: obs.NewRegistry()})
	defer tracer.Close()
	ctx, root := tracer.Start(bgctx, "determinism-guard")
	traced := runOnce(t, ctx)
	root.End()

	if untraced != traced {
		t.Fatalf("campaign results depend on tracing:\nuntraced: %s\ntraced:   %s",
			untraced, traced)
	}
	if td := tracer.Get(root.TraceID()); td == nil || td.Depth < 3 {
		t.Fatalf("guard trace missing or too shallow: %+v", td)
	}
}
