package etap

import (
	"etap/internal/campaign"
	"etap/internal/exp"
	"etap/internal/sim"
)

// ProgressEvent is one trial of a running campaign point, streamed to a
// WithProgress observer in deterministic order: trial index, how the
// trial ended, how many instructions it retired, and which shard
// executed it.
type ProgressEvent struct {
	// Trial is the zero-based index of the trial within its point.
	Trial int
	// Outcome classifies the trial.
	Outcome Outcome
	// Instructions is the trial's retired instruction count.
	Instructions uint64
	// Shard is the work-distribution shard that ran the trial; the
	// trial→shard mapping is deterministic, the shard→worker mapping is
	// not.
	Shard int
}

// Option configures a campaign point or an experiment run. The same set
// serves Campaign.RunPoint, Campaign.Sweep and Experiment.Run; options
// that do not apply to a call are ignored.
type Option func(*runConfig)

// runConfig is the collapsed option set behind the Option functions; it
// replaces the former etap.PointOptions/exp.Options duplication.
type runConfig struct {
	trials    int
	minTrials int
	seed      int64
	workers   int
	stopCI    float64
	recovery  int
	policy    Policy
	policySet bool
	progress  func(ProgressEvent)
}

func applyOptions(opts []Option) runConfig {
	var cfg runConfig
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// WithTrials sets the trial budget per measurement point. Zero or
// negative keeps the default (40).
func WithTrials(n int) Option {
	return func(c *runConfig) { c.trials = n }
}

// WithMinTrials sets the trial floor before WithStopCI early stopping may
// trigger; 0 picks a default scaled to the budget.
func WithMinTrials(n int) Option {
	return func(c *runConfig) { c.minTrials = n }
}

// WithSeed makes every injection schedule reproducible in s. Defaults
// to 1.
func WithSeed(s int64) Option {
	return func(c *runConfig) { c.seed = s }
}

// WithWorkers sizes the trial worker pool; 0 means GOMAXPROCS. Worker
// count never changes results.
func WithWorkers(n int) Option {
	return func(c *runConfig) { c.workers = n }
}

// WithStopCI stops a point early once every reported Wilson 95%
// confidence interval — the catastrophic-failure rate and, for hardened
// systems, the detection rate — is narrower than width (e.g. 0.05 for
// ±2.5 points), but not before the WithMinTrials floor.
func WithStopCI(width float64) Option {
	return func(c *runConfig) { c.stopCI = width }
}

// WithRecovery lets a detected trial roll back to the latest checkpoint
// strictly before the detection point and replay, up to maxAttempts
// restore-replay rounds per trial within the trial's instruction budget.
// A replay that completes with output bit-identical to the fault-free run
// classifies Recovered; one that completes with different output stays
// Completed (a degraded result); exhausting attempts or budget leaves the
// trial Detected. Zero or negative keeps recovery off — detection stays
// terminal and results are bit-identical to campaigns without the option.
func WithRecovery(maxAttempts int) Option {
	return func(c *runConfig) { c.recovery = maxAttempts }
}

// WithPolicy selects the analysis policy for experiment runs (campaign
// calls ignore it — their policy was fixed at Build time). Defaults to
// PolicyControlAddr, the configuration the paper's headline results use.
func WithPolicy(p Policy) Option {
	return func(c *runConfig) { c.policy = p; c.policySet = true }
}

// WithProgress streams every aggregated trial to fn in deterministic
// order. fn runs on the aggregation goroutine: it needs no locking, but
// a slow fn backpressures the campaign.
func WithProgress(fn func(ProgressEvent)) Option {
	return func(c *runConfig) { c.progress = fn }
}

// observer adapts the progress callback to the campaign engine's
// observer interface.
func (c runConfig) observer() campaign.Observer {
	if c.progress == nil {
		return nil
	}
	fn := c.progress
	return func(trial int, tr campaign.Trial) {
		fn(ProgressEvent{
			Trial:        trial,
			Outcome:      outcomeFromSim(tr.Outcome),
			Instructions: tr.Instret,
			Shard:        tr.Shard,
		})
	}
}

// point assembles the engine-level point spec for a campaign call.
func (c runConfig) point(errors int) campaign.Point {
	trials := c.trials
	if trials <= 0 {
		trials = 40
	}
	maxRec := c.recovery
	if maxRec < 0 {
		maxRec = 0
	}
	return campaign.Point{
		Errors:        errors,
		HiBit:         31,
		MaxTrials:     trials,
		MinTrials:     c.minTrials,
		StopWidth:     c.stopCI,
		Seed:          c.seed,
		Workers:       c.workers,
		MaxRecoveries: maxRec,
	}
}

// expOptions assembles the experiment-harness options for a registry
// run.
func (c runConfig) expOptions() exp.Options {
	policy := PolicyControlAddr
	if c.policySet {
		policy = c.policy
	}
	return exp.Options{
		Trials:   c.trials,
		Policy:   toCore(policy),
		Workers:  c.workers,
		Seed:     c.seed,
		Observer: c.observer(),
	}
}

// outcomeFromSim maps an engine outcome to the public enum.
func outcomeFromSim(o sim.Outcome) Outcome {
	switch o {
	case sim.Crash:
		return Crashed
	case sim.Timeout:
		return TimedOut
	case sim.Detected:
		return Detected
	case sim.Recovered:
		return Recovered
	default:
		return Completed
	}
}
