package etap

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"time"

	"etap/internal/exp"
	"etap/internal/obs"
	obstrace "etap/internal/obs/trace"
	"etap/internal/server"
)

// Server is the HTTP characterization service: a JSON API over the Lab
// and campaign surface where clients POST source + policy + campaign
// options to /api/v1/jobs, poll status, stream per-trial progress over
// SSE (a disconnecting streaming client opened with ?cancel=1 cancels
// its campaign between trials; benchmark/source jobs keep their partial
// aggregates, experiment jobs cancel without a report), and fetch
// the final Report as JSON (byte-identical to WriteReportsJSON of a
// direct run), CSV or text. Jobs run on a bounded worker pool; every
// submission shares one Lab, so identical (source, policy, harden) keys
// compile exactly once. docs/SERVE.md documents the endpoints and the
// SSE event schema.
type Server struct {
	inner  *server.Server
	lab    *Lab
	tracer *obstrace.Tracer
}

// serveConfig collects the ServeOption knobs.
type serveConfig struct {
	lab         *Lab
	workers     int
	queueDepth  int
	stateFile   string
	maxBody     int64
	maxJobs     int
	pprof       bool
	logf        func(format string, args ...any)
	logger      *slog.Logger
	otlpURL     string
	traceSample float64
}

// ServeOption configures NewServer and Serve.
type ServeOption func(*serveConfig)

// WithServeLab shares an existing Lab (and its compile cache) with the
// server; the default is a fresh NewLab.
func WithServeLab(l *Lab) ServeOption {
	return func(c *serveConfig) { c.lab = l }
}

// WithServeWorkers sizes the job worker pool — how many campaigns run
// concurrently. 0 means GOMAXPROCS.
func WithServeWorkers(n int) ServeOption {
	return func(c *serveConfig) { c.workers = n }
}

// WithServeQueueDepth bounds jobs waiting for a worker; a full queue
// rejects submissions with 503. 0 means 64.
func WithServeQueueDepth(n int) ServeOption {
	return func(c *serveConfig) { c.queueDepth = n }
}

// WithServeStateFile persists the job table as JSON at path (written
// atomically on every state change), so a restarted server still
// answers status and report queries for finished jobs. Jobs caught
// mid-flight by a restart come back as cancelled.
func WithServeStateFile(path string) ServeOption {
	return func(c *serveConfig) { c.stateFile = path }
}

// WithServeLog routes one line per job state change to logf.
func WithServeLog(logf func(format string, args ...any)) ServeOption {
	return func(c *serveConfig) { c.logf = logf }
}

// WithServeMaxBody bounds submission bodies in bytes. 0 means 8 MiB
// (room for the per-field source/input limits after JSON escaping).
func WithServeMaxBody(n int64) ServeOption {
	return func(c *serveConfig) { c.maxBody = n }
}

// WithServeMaxJobs bounds the in-memory job table: once it holds n
// jobs, new submissions prune the oldest finished jobs (their reports
// included) first. Live jobs are never pruned. 0 means the default
// bound (1024); negative means unbounded.
func WithServeMaxJobs(n int) ServeOption {
	return func(c *serveConfig) { c.maxJobs = n }
}

// WithServePprof mounts net/http/pprof under /debug/pprof/ on the
// service's handler. Opt-in: profiles expose internals no public
// deployment should.
func WithServePprof() ServeOption {
	return func(c *serveConfig) { c.pprof = true }
}

// WithServeLogger routes structured logs (job lifecycle with job IDs,
// HTTP requests with request IDs) to l. Takes precedence over
// WithServeLog when both are set.
func WithServeLogger(l *slog.Logger) ServeOption {
	return func(c *serveConfig) { c.logger = l }
}

// WithServeOTLP pushes every sampled completed trace to an OTLP/HTTP
// JSON collector at url ("http://host:4318"; the standard /v1/traces
// path is appended when the URL has none). Export is asynchronous with
// retry and backoff; undeliverable traces are dropped and counted
// (etap_trace_otlp_dropped_total), never blocking a request or a job.
// The flight recorder behind GET /traces works with or without this.
func WithServeOTLP(url string) ServeOption {
	return func(c *serveConfig) { c.otlpURL = url }
}

// WithServeTraceSample sets the fraction of traces exported over OTLP,
// decided deterministically from the trace ID. 0 (the default) exports
// everything; negative exports nothing. Sampling only gates export —
// every completed trace still enters the flight recorder behind
// GET /traces.
func WithServeTraceSample(ratio float64) ServeOption {
	return func(c *serveConfig) { c.traceSample = ratio }
}

// NewServer assembles the characterization service. Close it when done;
// Serve does both around one HTTP listener.
func NewServer(opts ...ServeOption) (*Server, error) {
	var cfg serveConfig
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.lab == nil {
		cfg.lab = NewLab()
	}
	s := &Server{lab: cfg.lab}
	var store server.Store
	if cfg.stateFile != "" {
		store = server.NewFileStore(cfg.stateFile)
	}
	registerLabMetrics(s.lab)
	// Tracing is always on: the flight recorder behind GET /traces is
	// the post-mortem surface for every deployment; OTLP export and its
	// sampling ratio are the opt-in parts.
	s.tracer = obstrace.New(obstrace.Config{
		SampleRatio: cfg.traceSample,
		OTLPURL:     cfg.otlpURL,
	})
	inner, err := server.New(server.Config{
		Run:          s.runJob,
		Prepare:      s.prepare,
		Workers:      cfg.workers,
		QueueDepth:   cfg.queueDepth,
		Store:        store,
		MaxBodyBytes: cfg.maxBody,
		MaxJobs:      cfg.maxJobs,
		EnablePprof:  cfg.pprof,
		Logger:       cfg.logger,
		Logf:         cfg.logf,
		Tracer:       s.tracer,
		Stats: func() map[string]any {
			return map[string]any{
				"lab": map[string]any{
					"entries":   s.lab.Len(),
					"builds":    s.lab.Builds(),
					"hits":      s.lab.Hits(),
					"evictions": s.lab.Evictions(),
				},
			}
		},
	})
	if err != nil {
		s.tracer.Close()
		return nil, err
	}
	s.inner = inner
	return s, nil
}

// registerLabMetrics exposes the server's shared Lab on the default
// registry. Func metrics replace on re-registration, so the newest
// server's Lab is the one scraped — the common deployments (one server
// per process, or tests constructing servers serially) both read the
// Lab that is actually serving.
func registerLabMetrics(l *Lab) {
	r := obs.Default()
	r.GaugeFunc("etap_lab_entries",
		"Distinct (source, policy, harden) keys cached in the serving Lab.",
		func() float64 { return float64(l.Len()) })
	r.CounterFunc("etap_lab_builds_total",
		"Cache misses the serving Lab paid for: compiles plus harden rewrites.",
		func() float64 { return float64(l.Builds()) })
	r.CounterFunc("etap_lab_hits_total",
		"Lab lookups served from cache.",
		func() float64 { return float64(l.Hits()) })
	r.CounterFunc("etap_lab_evictions_total",
		"Lab entries discarded by the LRU bound.",
		func() float64 { return float64(l.Evictions()) })
}

// Handler is the service's HTTP surface, mountable under any mux.
func (s *Server) Handler() http.Handler { return s.inner.Handler() }

// Lab is the shared compile cache the server's jobs build through.
func (s *Server) Lab() *Lab { return s.lab }

// Close cancels running jobs (partial aggregates persist as cancelled),
// waits for the workers, writes a final state snapshot and flushes any
// queued OTLP trace exports.
func (s *Server) Close() error {
	err := s.inner.Close()
	s.tracer.Close()
	return err
}

// Serve runs the characterization service on addr until ctx is
// cancelled, then shuts down gracefully: in-flight responses get a
// grace period, running campaigns stop between trials and persist as
// cancelled.
func Serve(ctx context.Context, addr string, opts ...ServeOption) error {
	s, err := NewServer(opts...)
	if err != nil {
		return err
	}
	defer s.Close()
	hs := &http.Server{Addr: addr, Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		hs.Close()
	}
	<-errCh // always http.ErrServerClosed after Shutdown/Close
	return nil
}

// defaultSweep is the errors-per-trial sweep a submission without an
// explicit errors list runs.
var defaultSweep = []int{1, 2, 4, 8}

// cleanRunBudget bounds the submit-time validation run of an ad-hoc
// source: a program whose fault-free run retires more instructions is
// rejected with a 400 rather than wedging a worker's unbounded golden
// pass.
const cleanRunBudget = 100_000_000

func reqErr(code, format string, args ...any) error {
	return &server.RequestError{Code: code, Message: fmt.Sprintf(format, args...)}
}

// resolvePolicy maps the request's policy name; empty selects the
// paper's headline PolicyControlAddr.
func resolvePolicy(name string) (Policy, error) {
	if name == "" {
		return PolicyControlAddr, nil
	}
	p, ok := ParsePolicy(name)
	if !ok {
		return 0, reqErr("invalid_job", "unknown policy %q (have control, control+addr, conservative)", name)
	}
	return p, nil
}

// prepare validates a submission synchronously at submit time: the
// subject must resolve, and benchmark/source jobs must compile (and
// harden, when requested) through the shared Lab — so a malformed
// program is a structured 400, never a wedged job slot, and the job's
// later run is a pure cache hit.
func (s *Server) prepare(req *server.SubmitRequest) error {
	policy, err := resolvePolicy(req.Policy)
	if err != nil {
		return err
	}
	if req.Experiment != "" {
		if _, ok := ExperimentByID(req.Experiment); !ok {
			return reqErr("invalid_job", "unknown experiment %q (have %v)", req.Experiment, ExperimentIDs())
		}
		return nil
	}
	source := req.Source
	if req.Benchmark != "" {
		b, ok := BenchmarkByName(req.Benchmark)
		if !ok {
			return reqErr("invalid_job", "unknown benchmark %q", req.Benchmark)
		}
		source = b.Source()
	}
	sys, err := s.lab.Build(source, policy)
	if err != nil {
		return reqErr("bad_source", "source does not build: %v", err)
	}
	// Ad-hoc sources are untrusted: prove the clean run terminates
	// acceptably before a worker bets its golden pass on it. Benchmarks
	// are registered and known to complete.
	if req.Benchmark == "" {
		res := sys.RunLimited([]byte(req.Input), cleanRunBudget)
		if res.Outcome != Completed {
			return reqErr("bad_source", "clean run must complete, got %s after %d instructions (%s)",
				res.Outcome, res.Instructions, res.TrapDescription)
		}
	}
	if req.Harden != nil {
		opts := HardenOptions{DupCompare: req.Harden.DupCompare, Signatures: req.Harden.Signatures}
		if _, err := s.lab.Harden(source, policy, opts); err != nil {
			return reqErr("bad_source", "source does not harden: %v", err)
		}
	}
	return nil
}

// runJob executes one validated job on a worker.
func (s *Server) runJob(ctx context.Context, req *server.SubmitRequest, progress func(server.TrialEvent)) (*exp.Report, error) {
	if req.Experiment != "" {
		return s.runExperimentJob(ctx, req, progress)
	}
	return s.runSweepJob(ctx, req, progress)
}

// campaignOptions translates the request's campaign knobs.
func campaignOptions(req *server.SubmitRequest) []Option {
	var opts []Option
	if req.Trials > 0 {
		opts = append(opts, WithTrials(req.Trials))
	}
	if req.MinTrials > 0 {
		opts = append(opts, WithMinTrials(req.MinTrials))
	}
	if req.Seed != 0 {
		opts = append(opts, WithSeed(req.Seed))
	}
	if req.Workers > 0 {
		opts = append(opts, WithWorkers(req.Workers))
	}
	if req.StopCI > 0 {
		opts = append(opts, WithStopCI(req.StopCI))
	}
	if req.Recovery > 0 {
		opts = append(opts, WithRecovery(req.Recovery))
	}
	return opts
}

// runExperimentJob replays one registered experiment. The report is the
// exact Report a direct Experiment.Run with the same options returns —
// the served JSON is byte-identical to WriteReportsJSON of that run.
func (s *Server) runExperimentJob(ctx context.Context, req *server.SubmitRequest, progress func(server.TrialEvent)) (*exp.Report, error) {
	e, ok := ExperimentByID(req.Experiment)
	if !ok {
		return nil, reqErr("invalid_job", "unknown experiment %q", req.Experiment)
	}
	opts := campaignOptions(req)
	if req.Policy != "" {
		policy, err := resolvePolicy(req.Policy)
		if err != nil {
			return nil, err
		}
		opts = append(opts, WithPolicy(policy))
	}
	// The registry harness restarts trial indices at 0 on every new
	// campaign point; the reset marks the point boundary.
	point, lastTrial := 0, -1
	opts = append(opts, WithProgress(func(ev ProgressEvent) {
		if ev.Trial <= lastTrial {
			point++
		}
		lastTrial = ev.Trial
		progress(server.TrialEvent{
			Point:        point,
			Errors:       -1,
			Trial:        ev.Trial,
			Outcome:      ev.Outcome.String(),
			Instructions: ev.Instructions,
			Shard:        ev.Shard,
		})
	}))
	return e.Run(ctx, opts...)
}

// runSweepJob characterizes one benchmark or ad-hoc source: build (a
// Lab cache hit after prepare), set up the campaign, sweep the error
// counts, and fold the points into a Report. A cancelled context stops
// between trials and returns the partial report alongside ctx.Err(),
// so the manager persists the partial aggregates.
func (s *Server) runSweepJob(ctx context.Context, req *server.SubmitRequest, progress func(server.TrialEvent)) (*exp.Report, error) {
	policy, err := resolvePolicy(req.Policy)
	if err != nil {
		return nil, err
	}
	subject := "source"
	source := req.Source
	input := []byte(req.Input)
	var score func(golden, corrupted []byte) (float64, bool)
	if req.Benchmark != "" {
		b, ok := BenchmarkByName(req.Benchmark)
		if !ok {
			return nil, reqErr("invalid_job", "unknown benchmark %q", req.Benchmark)
		}
		subject = b.Name()
		source = b.Source()
		input = b.Input()
		score = b.Score
	}

	var camp *Campaign
	mode := "protected"
	switch {
	case req.Harden != nil:
		mode = "hardened (detection campaign)"
		h, err := s.lab.Harden(source, policy, HardenOptions{
			DupCompare: req.Harden.DupCompare,
			Signatures: req.Harden.Signatures,
		})
		if err != nil {
			return nil, err
		}
		camp, err = h.NewDetectionCampaign(input)
		if err != nil {
			return nil, err
		}
	default:
		protected := req.Protected == nil || *req.Protected
		if !protected {
			mode = "unprotected"
		}
		sys, err := s.lab.Build(source, policy)
		if err != nil {
			return nil, err
		}
		camp, err = sys.NewCampaign(input, protected)
		if err != nil {
			return nil, err
		}
	}
	if score != nil {
		camp.SetScore(score)
	}

	sweep := req.Errors
	if len(sweep) == 0 {
		sweep = defaultSweep
	}
	opts := campaignOptions(req)
	var points []PointStats
	for i, n := range sweep {
		if ctx.Err() != nil {
			break
		}
		i, n := i, n
		pointOpts := append(opts[:len(opts):len(opts)], WithProgress(func(ev ProgressEvent) {
			progress(server.TrialEvent{
				Point:        i,
				Errors:       n,
				Trial:        ev.Trial,
				Outcome:      ev.Outcome.String(),
				Instructions: ev.Instructions,
				Shard:        ev.Shard,
			})
		}))
		points = append(points, camp.RunPoint(ctx, n, pointOpts...))
	}
	report := sweepReport(req, subject, mode, policy, points)
	// Report cancellation only when it actually curtailed the sweep: a
	// cancel landing after the final trial must not relabel a complete
	// run.
	curtailed := len(points) < len(sweep)
	for _, p := range points {
		curtailed = curtailed || p.Cancelled
	}
	if err := ctx.Err(); err != nil && curtailed {
		return report, err
	}
	return report, nil
}

// sweepReport folds sweep points into the structured Report the report
// endpoint serves. Cell text follows the exp renderers' conventions
// ("-" for NaN); a status column flags early-stopped and cancelled
// (partial) points.
func sweepReport(req *server.SubmitRequest, subject, mode string, policy Policy, points []PointStats) *exp.Report {
	trials := req.Trials
	if trials <= 0 {
		trials = 40
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	r := &exp.Report{
		ID:    "characterize",
		Title: fmt.Sprintf("Characterization of %s, %s, policy %s", subject, mode, policy),
		Kind:  exp.KindTable,
		App:   subject,
		Columns: []exp.Column{
			{Name: "errors", Unit: "count"},
			{Name: "trials", Unit: "count"},
			{Name: "crashes", Unit: "count"},
			{Name: "timeouts", Unit: "count"},
			{Name: "detected", Unit: "count"},
			{Name: "recovered", Unit: "count"},
			{Name: "completed", Unit: "count"},
			{Name: "masked", Unit: "count"},
			{Name: "accepted", Unit: "count"},
			{Name: "tolerated", Unit: "count"},
			{Name: "untolerated", Unit: "count"},
			{Name: "fail", Unit: "%"},
			{Name: "accept", Unit: "%"},
			{Name: "detect", Unit: "%"},
			{Name: "availability", Unit: "%"},
			{Name: "mean fidelity", Unit: "x"},
			{Name: "detect latency p50", Unit: "instructions"},
			{Name: "detect latency p95", Unit: "instructions"},
			{Name: "recover latency p50", Unit: "instructions"},
			{Name: "status"},
		},
		Trials: trials,
		Seed:   seed,
		Policy: policy.String(),
	}
	for _, p := range points {
		status := "ok"
		switch {
		case p.Cancelled:
			status = "cancelled (partial)"
		case p.EarlyStopped:
			status = "early stop"
		}
		r.Rows = append(r.Rows, []exp.Cell{
			exp.CellInt(p.Errors),
			exp.CellInt(p.Trials),
			exp.CellInt(p.Crashes),
			exp.CellInt(p.Timeouts),
			exp.CellInt(p.Detected),
			exp.CellInt(p.Recovered),
			exp.CellInt(p.Completed),
			exp.CellInt(p.Masked),
			exp.CellInt(p.Accepted),
			exp.CellInt(p.Tolerated),
			exp.CellInt(p.Untolerated),
			exp.CellCI(fmtPct(p.FailPct), p.FailPct, p.FailLowPct, p.FailHighPct),
			exp.CellNum(fmtPct(p.AcceptPct), p.AcceptPct),
			exp.CellCI(fmtPct(p.DetectPct), p.DetectPct, p.DetectLowPct, p.DetectHighPct),
			exp.CellCI(fmtPct(p.AvailabilityPct), p.AvailabilityPct, p.AvailabilityLowPct, p.AvailabilityHighPct),
			exp.CellNum(fmtFid(p.MeanValue), p.MeanValue),
			exp.CellInt(int(p.DetectLatencyP50)),
			exp.CellInt(int(p.DetectLatencyP95)),
			exp.CellInt(int(p.RecoverLatencyP50)),
			exp.CellStr(status),
		})
	}
	return r
}

func fmtPct(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", v)
}

func fmtFid(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.3f", v)
}
