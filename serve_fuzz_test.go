package etap

import (
	"errors"
	"testing"

	"etap/internal/server"
)

// FuzzPrepareSource fuzzes the submit-time minic source validation
// behind POST /api/v1/jobs: for any source/input pair, prepare must
// either accept (the program compiles, hardens when asked, and its
// clean run completes within the instruction budget) or reject with a
// structured *RequestError — never panic, and never occupy a job slot,
// since prepare runs before Submit enqueues anything.
func FuzzPrepareSource(f *testing.F) {
	s, err := NewServer(WithServeWorkers(1))
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { s.Close() })

	seeds := []struct{ source, input string }{
		{"int main() { return 0; }", ""},
		{"int main() { outb(inb()); return 0; }", "x"},
		{"tolerant int scale(int x) { return x * 3; }\nint main() { outb(scale(inb())); return 0; }", "a"},
		{"int main() { int a; a = 1 / 0; return a; }", ""},
		{"int main() { return x; }", ""},
		{"int main() {", ""},
		{"", ""},
		{"char buf[4]; int main() { buf[9999] = 1; return 0; }", ""},
		{"{{{", "\x00\xff"},
		{"/* comment only */", ""},
	}
	for _, sd := range seeds {
		f.Add(sd.source, sd.input, false)
	}
	f.Fuzz(func(t *testing.T, source, input string, harden bool) {
		// The HTTP path bounds sizes in validate() before prepare sees
		// the request; mirror that so the fuzzer probes the compiler, not
		// the byte limits.
		if len(source) > server.MaxSourceBytes || len(input) > server.MaxInputBytes {
			t.Skip()
		}
		req := &server.SubmitRequest{Source: source, Input: input}
		if harden {
			req.Harden = &server.HardenSpec{DupCompare: true, Signatures: true}
		}
		if err := s.prepare(req); err != nil {
			var re *server.RequestError
			if !errors.As(err, &re) {
				t.Fatalf("rejection is not a *RequestError: %T: %v", err, err)
			}
			if re.Code == "" || re.Message == "" {
				t.Fatalf("rejection lacks code or message: %+v", re)
			}
		}
	})
}
